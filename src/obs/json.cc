#include "obs/json.hh"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/check.hh"

namespace acamar {

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    ACAMAR_CHECK(kind_ == Kind::Object)
        << "set() on a non-object JsonValue";
    for (auto &[k, existing] : members_) {
        if (k == key) {
            existing = std::move(v);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(v));
    return *this;
}

JsonValue &
JsonValue::push(JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    ACAMAR_CHECK(kind_ == Kind::Array)
        << "push() on a non-array JsonValue";
    elements_.push_back(std::move(v));
    return *this;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return elements_.size();
    if (kind_ == Kind::Object)
        return members_.size();
    return 0;
}

const JsonValue &
JsonValue::at(size_t i) const
{
    ACAMAR_CHECK(kind_ == Kind::Array && i < elements_.size())
        << "at(" << i << ") on array of " << elements_.size();
    return elements_[i];
}

void
JsonValue::writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

std::string
JsonValue::formatNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Integral doubles inside the exactly-representable range print
    // as integers so counters never grow a ".0" or an exponent.
    if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    // %.17g round-trips; prefer the shortest form that still does.
    char buf[40];
    for (const int prec : {15, 16, 17}) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(buf, "%lf", &back);
        if (back == v)
            break;
    }
    return buf;
}

void
JsonValue::write(std::ostream &os) const
{
    switch (kind_) {
      case Kind::Null:
        os << "null";
        break;
      case Kind::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Kind::Number:
        os << formatNumber(num_);
        break;
      case Kind::String:
        writeEscaped(os, str_);
        break;
      case Kind::Array: {
        os << '[';
        bool first = true;
        for (const auto &e : elements_) {
            if (!first)
                os << ',';
            first = false;
            e.write(os);
        }
        os << ']';
        break;
      }
      case Kind::Object: {
        os << '{';
        bool first = true;
        for (const auto &[k, v] : members_) {
            if (!first)
                os << ',';
            first = false;
            writeEscaped(os, k);
            os << ':';
            v.write(os);
        }
        os << '}';
        break;
      }
    }
}

void
JsonValue::writePretty(std::ostream &os, int indent) const
{
    const std::string pad(static_cast<size_t>(indent) * 2, ' ');
    const std::string pad2(static_cast<size_t>(indent + 1) * 2, ' ');
    if (kind_ == Kind::Array && !elements_.empty()) {
        os << "[\n";
        for (size_t i = 0; i < elements_.size(); ++i) {
            os << pad2;
            elements_[i].writePretty(os, indent + 1);
            os << (i + 1 < elements_.size() ? ",\n" : "\n");
        }
        os << pad << ']';
        return;
    }
    if (kind_ == Kind::Object && !members_.empty()) {
        os << "{\n";
        for (size_t i = 0; i < members_.size(); ++i) {
            os << pad2;
            writeEscaped(os, members_[i].first);
            os << ": ";
            members_[i].second.writePretty(os, indent + 1);
            os << (i + 1 < members_.size() ? ",\n" : "\n");
        }
        os << pad << '}';
        return;
    }
    write(os);
}

std::string
JsonValue::dump() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

namespace {

/** Recursive-descent parser over a string, tracking its offset. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    const std::string &text_;
    size_t pos_ = 0;

    [[noreturn]] void
    fail(const std::string &why) const
    {
        std::ostringstream os;
        os << "JSON parse error at offset " << pos_ << ": " << why;
        throw std::runtime_error(os.str());
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        const size_t len = std::string(lit).size();
        if (text_.compare(pos_, len, lit) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return JsonValue(parseString());
        if (consumeLiteral("true"))
            return JsonValue(true);
        if (consumeLiteral("false"))
            return JsonValue(false);
        if (consumeLiteral("null"))
            return JsonValue();
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber();
        fail("unexpected character");
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue obj = JsonValue::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            obj.set(key, parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue arr = JsonValue::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // UTF-8 encode the BMP code point (surrogate pairs
                // are passed through as two 3-byte sequences, which
                // is enough for trace payloads).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        const std::string tok = text_.substr(start, pos_ - start);
        try {
            size_t used = 0;
            const double v = std::stod(tok, &used);
            if (used != tok.size())
                fail("malformed number '" + tok + "'");
            return JsonValue(v);
        } catch (const std::invalid_argument &) {
            fail("malformed number '" + tok + "'");
        } catch (const std::out_of_range &) {
            fail("number out of range '" + tok + "'");
        }
    }
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text)
{
    return JsonParser(text).parseDocument();
}

} // namespace acamar
