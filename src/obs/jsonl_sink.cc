#include "obs/jsonl_sink.hh"

#include "common/logging.hh"
#include "obs/correlation.hh"

namespace acamar {

JsonlTraceSink::JsonlTraceSink(const std::string &path)
    : out_(path), path_(path)
{
    if (!out_)
        ACAMAR_FATAL("cannot open trace output '", path, "'");
}

void
JsonlTraceSink::write(const TraceRecord &rec)
{
    JsonValue line = JsonValue::object();
    line.set("type", rec.type).set("seq", rec.seq);
    if (rec.runId != 0) {
        line.set("run_id", runIdHex(rec.runId))
            .set("span_id", rec.spanId);
    }
    if (rec.timed && rec.wallClock) {
        line.set("start_ns", rec.startCycles)
            .set("duration_ns", rec.durationCycles)
            .set("t_us", static_cast<double>(rec.startCycles) / 1e3);
    } else if (rec.timed) {
        const double us = static_cast<double>(rec.startCycles) /
                          TraceSession::instance().clockHz() * 1e6;
        line.set("start_cycles", rec.startCycles)
            .set("duration_cycles", rec.durationCycles)
            .set("t_us", us);
    }
    for (const auto &[k, v] : rec.args.members())
        line.set(k, v);
    line.write(out_);
    out_ << '\n';
}

void
JsonlTraceSink::flush()
{
    // Called after every stage drain: a crashed or aborted run keeps
    // every line that made it through a drain instead of losing the
    // whole stream buffer.
    out_.flush();
}

void
JsonlTraceSink::finish()
{
    out_.flush();
    if (!out_)
        warn("short write on trace output '", path_, "'");
    out_.close();
}

} // namespace acamar
