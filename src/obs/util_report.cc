#include "obs/util_report.hh"

#include <algorithm>

#include "obs/metrics.hh"

namespace acamar {

namespace {

/** bytes / ns is numerically GB/s (1e9 bytes per second). */
double
rate(uint64_t amount, uint64_t ns)
{
    if (ns == 0)
        return 0.0;
    return static_cast<double>(amount) / static_cast<double>(ns);
}

} // namespace

KernelUtil
kernelUtil(const KernelWorkEntry &entry, const MemCalibration &calib)
{
    KernelUtil u;
    u.achievedGbps = rate(entry.bytes, entry.totalNs);
    u.achievedGflops = rate(entry.flops, entry.totalNs);
    if (entry.bytes > 0) {
        u.arithmeticIntensity = static_cast<double>(entry.flops) /
                                static_cast<double>(entry.bytes);
    }
    if (calib.valid()) {
        u.peakFraction = u.achievedGbps / calib.peakGbps;
        u.hostRu = std::max(0.0, 1.0 - u.peakFraction);
    }
    return u;
}

JsonValue
utilReportJson(const WorkLedgerReport &ledger,
               const MemCalibration &calib, const std::string &gitSha)
{
    JsonValue o = JsonValue::object();
    o.set("schema", kUtilSchema);
    o.set("git_sha", gitSha);
    if (calib.valid())
        o.set("calibration", calib.toJson());

    uint64_t hostBytes = 0;
    uint64_t hostFlops = 0;
    uint64_t hostNs = 0;
    JsonValue kernels = JsonValue::array();
    for (const auto &k : ledger.kernels) {
        hostBytes += k.bytes;
        hostFlops += k.flops;
        hostNs += k.totalNs;
        const KernelUtil u = kernelUtil(k, calib);
        JsonValue z = JsonValue::object();
        z.set("zone", k.name)
            .set("calls", k.calls)
            .set("bytes", k.bytes)
            .set("flops", k.flops)
            .set("rows", k.rows)
            .set("nnz", k.nnz)
            .set("total_ns", k.totalNs)
            .set("achieved_gbps", u.achievedGbps)
            .set("achieved_gflops", u.achievedGflops)
            .set("arithmetic_intensity", u.arithmeticIntensity);
        if (calib.valid()) {
            z.set("peak_fraction", u.peakFraction)
                .set("host_ru", u.hostRu);
        }
        kernels.push(std::move(z));
    }
    o.set("kernels", std::move(kernels));

    // Host aggregate: kernel zones summed — the run's overall
    // roofline position.
    {
        JsonValue host = JsonValue::object();
        host.set("bytes", hostBytes)
            .set("flops", hostFlops)
            .set("kernel_ns", hostNs)
            .set("achieved_gbps", rate(hostBytes, hostNs));
        if (calib.valid()) {
            const double frac =
                rate(hostBytes, hostNs) / calib.peakGbps;
            host.set("peak_fraction", frac)
                .set("host_ru", std::max(0.0, 1.0 - frac));
        }
        o.set("host", std::move(host));
    }

    {
        JsonValue pool = JsonValue::object();
        const uint64_t accounted =
            ledger.poolBusyNs + ledger.poolIdleNs;
        pool.set("busy_ns", ledger.poolBusyNs)
            .set("idle_ns", ledger.poolIdleNs)
            .set("worker_ns", ledger.poolWorkerNs)
            .set("tasks", ledger.poolTasks)
            .set("steals", ledger.poolSteals);
        if (accounted > 0) {
            pool.set("busy_fraction",
                     static_cast<double>(ledger.poolBusyNs) /
                         static_cast<double>(accounted));
        }
        o.set("pool", std::move(pool));
    }

    {
        JsonValue batch = JsonValue::object();
        batch.set("jobs", ledger.batchJobs)
            .set("job_ns", ledger.batchJobNs);
        o.set("batch", std::move(batch));
    }

    {
        JsonValue samples = JsonValue::array();
        for (const auto &sp : ledger.samples) {
            JsonValue s = JsonValue::object();
            s.set("zone", sp.name)
                .set("rows", sp.rows)
                .set("nnz", sp.nnz)
                .set("ns", sp.ns);
            if (sp.rows > 0) {
                s.set("ns_per_row",
                      static_cast<double>(sp.ns) /
                          static_cast<double>(sp.rows));
            }
            samples.push(std::move(s));
        }
        JsonValue blocks = JsonValue::object();
        blocks.set("count", ledger.samples.size())
            .set("dropped", ledger.samplesDropped)
            .set("samples", std::move(samples));
        o.set("block_samples", std::move(blocks));
    }

    {
        JsonValue fpga = JsonValue::object();
        fpga.set("runs", ledger.fpgaRuns);
        if (ledger.fpgaRuns > 0) {
            const auto runs = static_cast<double>(ledger.fpgaRuns);
            fpga.set("paper_ru", ledger.fpgaPaperRuSum / runs)
                .set("occupancy_ru",
                     ledger.fpgaOccupancyRuSum / runs);
        }
        o.set("fpga_model", std::move(fpga));
    }
    return o;
}

void
publishUtilMetrics(const WorkLedgerReport &ledger,
                   const MemCalibration &calib)
{
    if (!metricsEnabled())
        return;
    MetricsRegistry &reg = MetricsRegistry::instance();

    uint64_t hostBytes = 0;
    uint64_t hostFlops = 0;
    uint64_t hostNs = 0;
    for (const auto &k : ledger.kernels) {
        hostBytes += k.bytes;
        hostFlops += k.flops;
        hostNs += k.totalNs;
    }
    reg.gauge("acamar_util_kernel_bytes",
              "bytes moved by ledgered kernels")
        .set(static_cast<double>(hostBytes));
    reg.gauge("acamar_util_kernel_flops",
              "flops performed by ledgered kernels")
        .set(static_cast<double>(hostFlops));
    reg.gauge("acamar_util_pool_busy_ns",
              "thread-pool wall time spent running tasks")
        .set(static_cast<double>(ledger.poolBusyNs));
    reg.gauge("acamar_util_pool_idle_ns",
              "thread-pool wall time spent parked idle")
        .set(static_cast<double>(ledger.poolIdleNs));
    if (calib.valid()) {
        reg.gauge("acamar_util_peak_gbps",
                  "calibrated sustainable memory bandwidth")
            .set(calib.peakGbps);
        const double achieved =
            hostNs > 0 ? static_cast<double>(hostBytes) /
                             static_cast<double>(hostNs)
                       : 0.0;
        reg.gauge("acamar_util_host_ru",
                  "host resource underutilization vs calibrated peak")
            .set(std::max(0.0, 1.0 - achieved / calib.peakGbps));
    }
    if (ledger.fpgaRuns > 0) {
        reg.gauge("acamar_util_fpga_paper_ru",
                  "mean FPGA-model RU (paper Eq. 5) per run")
            .set(ledger.fpgaPaperRuSum /
                 static_cast<double>(ledger.fpgaRuns));
    }
}

} // namespace acamar
