/**
 * @file
 * Convergence anomaly detection and solve deadlines.
 *
 * The paper's robustness story (Section IV-B) reacts to divergence
 * only after a solver has failed; an operator running a long batch
 * wants the earlier signals too. ConvergenceHealthMonitor watches
 * the per-iteration residual trajectory that ConvergenceMonitor
 * already stages and detects three anomaly patterns while the solve
 * is still running:
 *
 *  - **residual stall**: no relative improvement over a window of
 *    iterations (a plateau shorter than the window never flags, so
 *    plateau-then-recover trajectories stay clean);
 *  - **divergence**: residual growth on `divergenceWindow`
 *    consecutive iterations ending above the initial residual —
 *    caught long before the 1e4 growth factor that stops the solve;
 *  - **NaN precursor**: residual magnitude or within-window growth
 *    consistent with the fp32 overflow ramps the paper documents,
 *    or an already non-finite residual.
 *
 * Each anomaly latches once per solve, emitting one typed `health`
 * trace event and bumping an `acamar_health_*_total` metric, so a
 * noisy trajectory cannot flood the trace.
 *
 * SolveWatchdog is the companion hard limit: a per-solve iteration
 * and/or wall-time deadline. ConvergenceMonitor consults it each
 * observation and reports SolveStatus::TimedOut when it expires, so
 * a stuck job ends up `timed_out` in the batch report instead of
 * spinning to the 3000-iteration cap. The clock is injectable for
 * deterministic tests.
 */

#ifndef ACAMAR_OBS_HEALTH_HH
#define ACAMAR_OBS_HEALTH_HH

#include <cstdint>
#include <string>
#include <vector>

namespace acamar {

/** Detection thresholds for ConvergenceHealthMonitor. */
struct HealthOptions {
    /** Iterations of lookback for stall detection. */
    int stallWindow = 50;

    /**
     * Minimum relative residual improvement over the stall window;
     * less than this flags a stall (0.01 = 1% in stallWindow trips).
     */
    double stallImprovement = 0.01;

    /** Consecutive growing iterations that flag divergence. */
    int divergenceWindow = 10;

    /** Residual magnitude treated as a NaN/overflow precursor. */
    double nanMagnitude = 1e30;

    /** Within-window growth factor treated as a NaN precursor. */
    double nanGrowthFactor = 1e12;
};

/** Online anomaly detector over one solve's residual trajectory. */
class ConvergenceHealthMonitor
{
  public:
    /** What (if anything) a single observation newly detected. */
    enum class Anomaly {
        None,
        Stall,
        Divergence,
        NanPrecursor,
    };

    /**
     * @param opts detection thresholds.
     * @param initial_residual the solve's starting ||r||.
     * @param solver short solver name for the emitted events.
     */
    ConvergenceHealthMonitor(const HealthOptions &opts,
                             double initial_residual,
                             std::string solver = {});

    /**
     * Feed one residual observation. Returns the anomaly this
     * observation newly detected (None for a healthy step or one
     * whose anomaly kind already latched). Detection also emits a
     * `health` trace event and bumps the matching metric counter.
     */
    Anomaly observe(int iteration, double residual);

    /** True once a stall has been flagged this solve. */
    bool stallDetected() const { return stall_; }

    /** True once divergence has been flagged this solve. */
    bool divergenceDetected() const { return diverging_; }

    /** True once a NaN precursor has been flagged this solve. */
    bool nanPrecursorDetected() const { return nanPrecursor_; }

    /** True when any anomaly has been flagged this solve. */
    bool
    anyDetected() const
    {
        return stall_ || diverging_ || nanPrecursor_;
    }

  private:
    void flag(Anomaly kind, int iteration, double residual,
              const std::string &detail);

    HealthOptions opts_;
    double initialResidual_;
    std::string solver_;

    /** Residual ring buffer, capacity stallWindow (allocated once). */
    std::vector<double> window_;
    size_t head_ = 0;
    size_t filled_ = 0;

    double prevResidual_;
    int growthRun_ = 0;

    bool stall_ = false;
    bool diverging_ = false;
    bool nanPrecursor_ = false;
};

/** Human-readable anomaly name ("stall", ...). */
std::string to_string(ConvergenceHealthMonitor::Anomaly a);

/** Per-solve iteration/wall-time deadline. */
class SolveWatchdog
{
  public:
    /** Nanosecond steady-clock source (injectable for tests). */
    using NowFn = uint64_t (*)();

    /**
     * @param deadline_iterations iteration budget; <= 0 disables.
     * @param deadline_ms wall budget in ms; <= 0 disables.
     * @param now clock override, nullptr = the profiler's steady
     *        clock. The start time is read at construction.
     */
    SolveWatchdog(int deadline_iterations, double deadline_ms,
                  NowFn now = nullptr);

    /** True when at least one deadline is armed. */
    bool
    enabled() const
    {
        return deadlineIterations_ > 0 || deadlineMs_ > 0.0;
    }

    /**
     * Check the deadlines after `iteration` completed trips.
     * Latches: once expired, stays expired.
     */
    bool expired(int iteration);

    /** Which deadline fired: "iterations", "wall_ms", or "". */
    const char *reason() const { return reason_; }

  private:
    int deadlineIterations_;
    double deadlineMs_;
    NowFn now_;
    uint64_t startNs_ = 0;
    bool expired_ = false;
    const char *reason_ = "";
};

} // namespace acamar

#endif // ACAMAR_OBS_HEALTH_HH
