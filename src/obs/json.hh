/**
 * @file
 * Minimal JSON document model for the observability layer.
 *
 * The trace sinks, the stats snapshot and the run-report export all
 * need to *write* JSON deterministically, and the tests need to
 * *read* it back to assert schemas. This is a deliberately small DOM
 * (no SAX, no allocator tricks): objects keep insertion order so the
 * emitted bytes are stable across runs and platforms, which makes
 * trace files diffable artifacts.
 */

#ifndef ACAMAR_OBS_JSON_HH
#define ACAMAR_OBS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace acamar {

/** One JSON value (null / bool / number / string / array / object). */
class JsonValue
{
  public:
    /** The JSON type tags. */
    enum class Kind {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() : kind_(Kind::Null) {}
    JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    JsonValue(double v) : kind_(Kind::Number), num_(v) {}
    JsonValue(int v) : kind_(Kind::Number), num_(v) {}
    JsonValue(int64_t v)
        : kind_(Kind::Number), num_(static_cast<double>(v))
    {}
    JsonValue(uint64_t v)
        : kind_(Kind::Number), num_(static_cast<double>(v))
    {}
    JsonValue(const char *s) : kind_(Kind::String), str_(s) {}
    JsonValue(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

    /** An empty array value. */
    static JsonValue array();

    /** An empty object value. */
    static JsonValue object();

    /** Type tag of this value. */
    Kind kind() const { return kind_; }

    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Numeric payload (0 when not a number). */
    double asDouble() const { return isNumber() ? num_ : 0.0; }

    /** Numeric payload truncated to int64 (0 when not a number). */
    int64_t asInt() const { return static_cast<int64_t>(asDouble()); }

    /** String payload (empty when not a string). */
    const std::string &str() const { return str_; }

    /** Bool payload (false when not a bool). */
    bool asBool() const { return kind_ == Kind::Bool && bool_; }

    /** Set a key on an object (this becomes an object if null). */
    JsonValue &set(const std::string &key, JsonValue v);

    /** Append to an array (this becomes an array if null). */
    JsonValue &push(JsonValue v);

    /** Object lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** True when this is an object with the key present. */
    bool has(const std::string &key) const { return find(key); }

    /** Element count of an array/object; 0 otherwise. */
    size_t size() const;

    /** Array element access (valid index required). */
    const JsonValue &at(size_t i) const;

    /** Object entries in insertion order. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    /** Serialize compactly (no whitespace). Deterministic. */
    void write(std::ostream &os) const;

    /** Serialize with 2-space indentation. Deterministic. */
    void writePretty(std::ostream &os, int indent = 0) const;

    /** write() into a string. */
    std::string dump() const;

    /**
     * Parse one JSON document. Throws std::runtime_error (with an
     * offset-bearing message) on malformed input or trailing junk.
     */
    static JsonValue parse(const std::string &text);

    /** Write a JSON-escaped string literal (with quotes). */
    static void writeEscaped(std::ostream &os, const std::string &s);

    /**
     * Deterministic number formatting: integral values print without
     * a fraction, everything else as shortest round-trippable form;
     * non-finite values become null (JSON has no NaN/inf).
     */
    static std::string formatNumber(double v);

  private:
    Kind kind_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> elements_;                      // Array
    std::vector<std::pair<std::string, JsonValue>> members_; // Object
};

} // namespace acamar

#endif // ACAMAR_OBS_JSON_HH
