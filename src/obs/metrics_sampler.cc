#include "obs/metrics_sampler.hh"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "common/check.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"

#ifdef __linux__
#include <unistd.h>
#endif

namespace acamar {

namespace {

/** True when `path` names the JSON exposition format. */
bool
wantsJson(const std::string &path)
{
    const std::string suffix = ".json";
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace

double
MetricsSampler::processRssBytes()
{
#ifdef __linux__
    // statm field 2 is resident pages; no parsing beyond two longs.
    std::ifstream statm("/proc/self/statm");
    long total_pages = 0;
    long resident_pages = 0;
    if (!(statm >> total_pages >> resident_pages))
        return 0.0;
    const long page = sysconf(_SC_PAGESIZE);
    if (page <= 0)
        return 0.0;
    return static_cast<double>(resident_pages) *
           static_cast<double>(page);
#else
    return 0.0;
#endif
}

void
MetricsSampler::writeExposition(const std::string &path)
{
    ACAMAR_CHECK(!path.empty()) << "empty metrics exposition path";
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out) {
            warn("cannot open metrics exposition temp '", tmp, "'");
            return;
        }
        if (wantsJson(path)) {
            MetricsRegistry::instance().snapshotJson().writePretty(
                out);
            out << '\n';
        } else {
            MetricsRegistry::instance().writePrometheus(out);
        }
        out.flush();
        if (!out) {
            warn("short write on metrics exposition '", tmp, "'");
            return;
        }
    }
    // rename(2) is atomic within a filesystem: a concurrent reader
    // sees either the previous snapshot or this one, never a tear.
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        warn("cannot rename '", tmp, "' over '", path, "'");
}

MetricsSampler::MetricsSampler(const MetricsSamplerOptions &opts)
    : opts_(opts)
{
    ACAMAR_CHECK(opts_.periodMs > 0.0)
        << "non-positive metrics sample period";
    lastNs_ = Profiler::nowNs();
    thread_ = std::thread([this] { loop(); });
}

MetricsSampler::~MetricsSampler()
{
    stop();
}

void
MetricsSampler::stop()
{
    if (joined_)
        return;
    joined_ = true;
    {
        ReleasableMutexLock lk(mutex_);
        stop_ = true;
        lk.release();
        cv_.notifyOne();
    }
    thread_.join();
    // Final pass from the stopping thread: the exposition file and
    // the last metrics_sample event reflect the end-of-run state.
    samplePass();
}

void
MetricsSampler::loop()
{
    using MsDuration = std::chrono::duration<double, std::milli>;
    const MsDuration period(opts_.periodMs);
    while (true) {
        {
            MutexLock lk(mutex_);
            const bool stopping = cv_.waitFor(
                lk, period, [this]() ACAMAR_REQUIRES(mutex_) {
                    return stop_;
                });
            if (stopping)
                return; // stop() takes the final pass
        }
        // The wakeup lock is released before sampling: the pass
        // takes the registry lock and trace-stage locks freely.
        samplePass();
    }
}

void
MetricsSampler::samplePass()
{
    auto &reg = MetricsRegistry::instance();
    const uint64_t pass =
        samples_.fetch_add(1, std::memory_order_relaxed) + 1;

    const double rss = processRssBytes();
    reg.gauge("acamar_process_rss_bytes",
              "process resident set size")
        .set(rss);

    // Solver throughput since the previous pass.
    const uint64_t now_ns = Profiler::nowNs();
    const uint64_t iters =
        reg.counter("acamar_solver_iterations_total",
                    "solver loop trips across all solves")
            .value();
    double ips = 0.0;
    if (now_ns > lastNs_) {
        ips = static_cast<double>(iters - lastIterations_) /
              (static_cast<double>(now_ns - lastNs_) / 1e9);
    }
    lastIterations_ = iters;
    lastNs_ = now_ns;
    reg.gauge("acamar_solver_iterations_per_sec",
              "solver throughput over the last sample period")
        .set(ips);

    const double in_flight =
        reg.gauge("acamar_batch_jobs_in_flight",
                  "batch jobs running right now")
            .value();

    ACAMAR_TRACE(MetricsSampleEvent{static_cast<int64_t>(pass), rss,
                                    in_flight, ips});

    if (!opts_.outPath.empty())
        writeExposition(opts_.outPath);
}

} // namespace acamar
