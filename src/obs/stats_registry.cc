#include "obs/stats_registry.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"

namespace acamar {

namespace {

JsonValue
numberOrString(double v)
{
    // JSON has no NaN/inf; the text spelling keeps the value visible.
    if (std::isfinite(v))
        return JsonValue(v);
    return JsonValue(formatStatValue(v));
}

} // namespace

JsonValue
statGroupJson(const StatGroup &g)
{
    JsonValue stats = JsonValue::object();
    for (const auto &s : g.view()) {
        JsonValue entry = JsonValue::object();
        if (s.scalar) {
            entry.set("kind", "scalar")
                .set("value", numberOrString(s.scalar->value()));
        } else if (s.average) {
            entry.set("kind", "average")
                .set("count", s.average->count())
                .set("mean", numberOrString(s.average->mean()))
                .set("min", numberOrString(s.average->min()))
                .set("max", numberOrString(s.average->max()))
                .set("sum", numberOrString(s.average->sum()));
        } else if (s.dist) {
            JsonValue buckets = JsonValue::array();
            for (int i = 0; i < s.dist->numBuckets(); ++i)
                buckets.push(s.dist->bucket(i));
            entry.set("kind", "dist")
                .set("count", s.dist->count())
                .set("underflows", s.dist->underflows())
                .set("overflows", s.dist->overflows())
                .set("buckets", std::move(buckets));
        }
        if (!s.desc.empty())
            entry.set("desc", s.desc);
        stats.set(s.name, std::move(entry));
    }
    JsonValue out = JsonValue::object();
    out.set("name", g.name()).set("stats", std::move(stats));
    return out;
}

StatRegistry &
StatRegistry::instance()
{
    static StatRegistry registry;
    return registry;
}

void
StatRegistry::add(const StatGroup *g)
{
    ACAMAR_CHECK(g) << "null stat group";
    MutexLock lk(mutex_);
    live_.push_back(g);
}

void
StatRegistry::remove(const StatGroup *g)
{
    MutexLock lk(mutex_);
    auto it = std::find(live_.begin(), live_.end(), g);
    if (it == live_.end())
        return;
    if (retainRemoved_)
        frozen_.push_back(statGroupJson(**it));
    live_.erase(it);
}

void
StatRegistry::setRetainRemoved(bool retain)
{
    MutexLock lk(mutex_);
    retainRemoved_ = retain;
    if (!retain)
        frozen_.clear();
}

size_t
StatRegistry::liveGroups() const
{
    MutexLock lk(mutex_);
    return live_.size();
}

JsonValue
StatRegistry::snapshotJson() const
{
    MutexLock lk(mutex_);

    std::vector<JsonValue> all;
    for (const StatGroup *g : live_)
        all.push_back(statGroupJson(*g));
    for (const JsonValue &g : frozen_)
        all.push_back(g);

    // Sort by (name, serialized content): group names repeat (one
    // per accelerator instance in a sweep) and registration order
    // is a race under the batch engine, but content is not — equal
    // keys are interchangeable, so the snapshot bytes match the
    // serial reference run's exactly.
    std::vector<std::pair<std::string, size_t>> order;
    order.reserve(all.size());
    for (size_t i = 0; i < all.size(); ++i)
        order.emplace_back(all[i].find("name")->str() + '\0' +
                               all[i].dump(),
                           i);
    std::sort(order.begin(), order.end());

    JsonValue groups = JsonValue::array();
    for (const auto &[key, idx] : order)
        groups.push(std::move(all[idx]));

    JsonValue out = JsonValue::object();
    out.set("live_groups", static_cast<uint64_t>(live_.size()))
        .set("frozen_groups", static_cast<uint64_t>(frozen_.size()))
        .set("groups", std::move(groups));
    return out;
}

void
StatRegistry::dumpText(std::ostream &os) const
{
    MutexLock lk(mutex_);
    std::vector<const StatGroup *> live = live_;
    std::stable_sort(live.begin(), live.end(),
                     [](const StatGroup *a, const StatGroup *b) {
                         return a->name() < b->name();
                     });
    for (const StatGroup *g : live)
        g->dump(os);
}

} // namespace acamar
