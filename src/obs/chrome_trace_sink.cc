#include "obs/chrome_trace_sink.hh"

#include "common/logging.hh"
#include "obs/correlation.hh"

namespace acamar {

namespace {

// Track (tid) layout of the rendered timeline. Cycle-timed spans
// get one row per category; untimed instants share a sequence row.
constexpr int kTidPhases = 0;
constexpr int kTidSpmv = 1;
constexpr int kTidReconfig = 2;
constexpr int kTidEvents = 3;

// Profiler zones render one track per recording thread, above the
// fixed cycle-timeline tracks.
constexpr int kTidProfileBase = 16;

int
tidFor(const TraceRecord &rec)
{
    if (const JsonValue *tid = rec.args.find("tid"))
        return kTidProfileBase + static_cast<int>(tid->asInt());
    if (rec.type == "spmv_set")
        return kTidSpmv;
    if (rec.type == "reconfig" || rec.type == "icap_transfer")
        return kTidReconfig;
    if (rec.type == "phase")
        return kTidPhases;
    return kTidEvents;
}

std::string
nameFor(const TraceRecord &rec)
{
    if (const JsonValue *n = rec.args.find("name"))
        return n->str();
    if (rec.type == "spmv_set") {
        const JsonValue *u = rec.args.find("unroll");
        return "spmv set (U=" +
               JsonValue::formatNumber(u ? u->asDouble() : 0) + ")";
    }
    if (rec.type == "reconfig") {
        const JsonValue *r = rec.args.find("region");
        return "reconfig " + (r ? r->str() : std::string("?"));
    }
    if (rec.type == "solve_iteration") {
        const JsonValue *s = rec.args.find("solver");
        return (s ? s->str() : std::string("?")) + " iteration";
    }
    return rec.type;
}

JsonValue
threadNameMeta(int tid, const char *name)
{
    JsonValue ev = JsonValue::object();
    JsonValue args = JsonValue::object();
    args.set("name", name);
    ev.set("name", "thread_name")
        .set("ph", "M")
        .set("pid", 1)
        .set("tid", tid)
        .set("args", std::move(args));
    return ev;
}

} // namespace

ChromeTraceSink::ChromeTraceSink(const std::string &path)
    : out_(path), path_(path)
{
    if (!out_)
        ACAMAR_FATAL("cannot open chrome trace output '", path, "'");
    out_ << "{\"traceEvents\":[";
    writeEvent(threadNameMeta(kTidPhases, "phases"));
    writeEvent(threadNameMeta(kTidSpmv, "spmv sets"));
    writeEvent(threadNameMeta(kTidReconfig, "icap / reconfig"));
    writeEvent(threadNameMeta(kTidEvents, "solver events (seq)"));
}

void
ChromeTraceSink::writeEvent(const JsonValue &ev)
{
    if (!first_)
        out_ << ',';
    first_ = false;
    ev.write(out_);
    out_ << '\n';
}

void
ChromeTraceSink::write(const TraceRecord &rec)
{
    const double hz = TraceSession::instance().clockHz();
    JsonValue ev = JsonValue::object();
    ev.set("name", nameFor(rec))
        .set("cat", rec.type)
        .set("pid", 1)
        .set("tid", tidFor(rec));
    if (rec.timed && rec.wallClock) {
        // Profiler spans: nanoseconds of wall time, no kernel clock.
        ev.set("ph", "X")
            .set("ts", static_cast<double>(rec.startCycles) / 1e3)
            .set("dur",
                 static_cast<double>(rec.durationCycles) / 1e3);
    } else if (rec.timed) {
        const double ts =
            static_cast<double>(rec.startCycles) / hz * 1e6;
        const double dur =
            static_cast<double>(rec.durationCycles) / hz * 1e6;
        ev.set("ph", "X").set("ts", ts).set("dur", dur);
    } else {
        // Untimed events land on a sequence-ordered track; one
        // microsecond per event keeps Perfetto's zoom usable.
        ev.set("ph", "i")
            .set("s", "t")
            .set("ts", static_cast<double>(rec.seq));
    }
    JsonValue args = rec.args;
    if (rec.runId != 0) {
        args.set("run_id", runIdHex(rec.runId))
            .set("span_id", rec.spanId);
    }
    ev.set("args", std::move(args));
    writeEvent(ev);
}

void
ChromeTraceSink::flush()
{
    // A crashed run leaves a truncated JSON array; Perfetto and
    // chrome://tracing both recover the events written so far.
    out_.flush();
}

void
ChromeTraceSink::finish()
{
    out_ << "],\"displayTimeUnit\":\"ms\"}\n";
    out_.flush();
    if (!out_)
        warn("short write on chrome trace output '", path_, "'");
    out_.close();
}

} // namespace acamar
