/**
 * @file
 * acamar-util-v1: the machine-readable utilization report.
 *
 * One JSON document answers "how well did this run use the
 * hardware": per-kernel achieved GB/s against the calibrated STREAM
 * peak (roofline position), host resource underutilization (RU =
 * 1 - achieved/peak, mirroring the paper's Eq. 5 on the host side),
 * ThreadPool busy/idle attribution, BatchSolver job totals, the
 * per-row-block cost samples the autotuner consumes, and the
 * FPGA-model RU of the same run — host and model utilization in one
 * place. RunArtifacts writes it under --util-report;
 * tools/util_report.py validates and pretty-prints it; PerfReporter
 * embeds the kernel/pool core of it in acamar-perf-v1 records.
 */

#ifndef ACAMAR_OBS_UTIL_REPORT_HH
#define ACAMAR_OBS_UTIL_REPORT_HH

#include <string>

#include "obs/json.hh"
#include "obs/mem_calibration.hh"
#include "obs/work_ledger.hh"

namespace acamar {

/** Schema tag stamped on every utilization report. */
inline constexpr const char *kUtilSchema = "acamar-util-v1";

/**
 * Per-kernel derived rates for one merged ledger entry. achievedGbps
 * divides bytes by the scope wall time summed across threads, so for
 * kernels that ran concurrently it understates per-thread rate and
 * reflects aggregate occupancy instead — the quantity RU wants.
 * Fields depending on the calibrated peak are negative when no
 * calibration is available (JSON omits them).
 */
struct KernelUtil {
    double achievedGbps = 0.0;
    double achievedGflops = 0.0;
    double arithmeticIntensity = 0.0; //!< flops per byte
    double peakFraction = -1.0;       //!< achieved/peak, [0, ...)
    double hostRu = -1.0;             //!< max(0, 1 - achieved/peak)
};

/** Derived rates for `entry` against `calib` (see KernelUtil). */
KernelUtil kernelUtil(const KernelWorkEntry &entry,
                      const MemCalibration &calib);

/**
 * Build the full acamar-util-v1 document from a closed (or
 * snapshotted) ledger window and the calibration of record. An
 * invalid calibration omits the calibration block and every
 * peak-relative field; the report is still schema-valid.
 */
JsonValue utilReportJson(const WorkLedgerReport &ledger,
                         const MemCalibration &calib,
                         const std::string &gitSha);

/**
 * Mirror the report's headline numbers into the metrics registry as
 * acamar_util_* gauges (no-op when metrics are disabled), so live
 * samplers export utilization alongside run health.
 */
void publishUtilMetrics(const WorkLedgerReport &ledger,
                        const MemCalibration &calib);

} // namespace acamar

#endif // ACAMAR_OBS_UTIL_REPORT_HH
