/**
 * @file
 * WorkLedger: byte-accurate utilization attribution behind the
 * ACAMAR_WORK_SCOPE macro.
 *
 * Kernel entry points in src/sparse open a work scope right before
 * their hot loop:
 *
 *     void spmvRows(...) {
 *         ACAMAR_WORK_SCOPE("sparse/spmv_rows",
 *                           csrSpmvWork(end - begin, nnz, sizeof(T)));
 *         // acamar: hot-loop
 *         ...
 *     }
 *
 * When the ledger is not running the site costs one relaxed bool
 * load — the counts expression is wrapped in a lambda and never
 * evaluated. When running, the scope's destructor folds the counts
 * plus the measured wall time into a per-thread shard (the Profiler
 * shard discipline, under its own pair of lock ranks) and stages one
 * bounded per-row-block sample, so the same sites that meter bytes
 * also feed the ns/row data the host autotuner consumes.
 *
 * The ledger additionally aggregates, via plain relaxed atomics:
 * ThreadPool busy/idle/steal wall time (every worker-loop iteration
 * lands in exactly one bucket), BatchSolver per-job wall time, and
 * the FPGA-model RU of each accelerator run — so stop() hands back
 * host utilization and model utilization in one report.
 */

#ifndef ACAMAR_OBS_WORK_LEDGER_HH
#define ACAMAR_OBS_WORK_LEDGER_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/kernel_work.hh"
#include "obs/profiler.hh"

namespace acamar {

/** Merged per-zone totals for one kernel entry point. */
struct KernelWorkEntry {
    std::string name;    //!< zone name (e.g. "sparse/spmv_rows")
    uint64_t calls = 0;
    uint64_t bytes = 0;
    uint64_t flops = 0;
    uint64_t totalNs = 0; //!< summed across threads
    int64_t rows = 0;
    int64_t nnz = 0;
};

/** One sampled row-block: the autotuner's ns/row data point. */
struct WorkBlockSample {
    std::string name;
    int64_t rows = 0;
    int64_t nnz = 0;
    uint64_t ns = 0;
};

/** Everything WorkLedger::stop() / snapshot() hands back. */
struct WorkLedgerReport {
    /** Per-kernel totals, name-sorted. */
    std::vector<KernelWorkEntry> kernels;

    /** Bounded row-block samples (rows > 0 scopes only). */
    std::vector<WorkBlockSample> samples;
    uint64_t samplesDropped = 0;

    // Pool attribution: every worker-loop iteration is classified as
    // busy (ran a task) or idle (parked on the wakeup cv), so busy +
    // idle covers the loop; workerNs is each worker's independently
    // measured loop lifetime (recorded at thread exit, so it stays 0
    // for pools that outlive the collection window).
    uint64_t poolBusyNs = 0;
    uint64_t poolIdleNs = 0;
    uint64_t poolWorkerNs = 0;
    uint64_t poolTasks = 0;
    uint64_t poolSteals = 0;

    uint64_t batchJobs = 0;
    uint64_t batchJobNs = 0;

    // FPGA-model RU, summed over recorded accelerator runs; divide
    // by fpgaRuns for the means the util report exports.
    uint64_t fpgaRuns = 0;
    double fpgaPaperRuSum = 0.0;
    double fpgaOccupancyRuSum = 0.0;

    /** True when nothing was recorded. */
    bool empty() const;

    /** Merged totals for one zone; nullptr when absent. */
    const KernelWorkEntry *find(const std::string &name) const;
};

/**
 * The process-wide ledger. Thread-safe: scopes may open and close on
 * any thread; each thread owns its shard and stop() merges them all
 * under the state lock (LockRank::kWorkLedgerState ->
 * kWorkLedgerShard).
 */
class WorkLedger
{
  public:
    /** The singleton. */
    static WorkLedger &instance();

    /** True while a start()/stop() window is open. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Begin collecting. Ignored (with a warning) when running. */
    void start();

    /** Stop collecting; merge and return everything recorded. */
    WorkLedgerReport stop();

    /**
     * Merge what every shard holds so far and return a copy without
     * stopping: totals keep accumulating, and a later stop() returns
     * the full window. PerfReporter uses this to embed utilization
     * into perf records while RunArtifacts still owns the window.
     */
    WorkLedgerReport snapshot();

    /** Fold one scope's counts into this thread's shard. */
    void record(const char *name, const WorkCounts &counts,
                uint64_t ns);

    // Pool / batch / accelerator attribution; relaxed atomics so the
    // recording sites never take a lock.

    /** Worker-loop iteration that ran a task. */
    void
    addPoolBusyNs(uint64_t ns)
    {
        poolBusyNs_.fetch_add(ns, std::memory_order_relaxed);
    }

    /** Worker-loop iteration that parked on the wakeup cv. */
    void
    addPoolIdleNs(uint64_t ns)
    {
        poolIdleNs_.fetch_add(ns, std::memory_order_relaxed);
    }

    /** One worker thread's whole loop lifetime (at thread exit). */
    void
    addPoolWorkerNs(uint64_t ns)
    {
        poolWorkerNs_.fetch_add(ns, std::memory_order_relaxed);
    }

    /** One task executed by a pool worker. */
    void
    addPoolTask(uint64_t stolen)
    {
        poolTasks_.fetch_add(1, std::memory_order_relaxed);
        poolSteals_.fetch_add(stolen, std::memory_order_relaxed);
    }

    /** One batch job finished after `ns` of wall time. */
    void
    addBatchJob(uint64_t ns)
    {
        batchJobs_.fetch_add(1, std::memory_order_relaxed);
        batchJobNs_.fetch_add(ns, std::memory_order_relaxed);
    }

    /** One accelerator run's FPGA-model RU pair (Eq. 5 + occupancy). */
    void recordFpgaRu(double paperRu, double occupancyRu);

  private:
    WorkLedger() = default;

    void resetAggregates();
    void fillAggregates(WorkLedgerReport &rep) const;

    std::atomic<bool> enabled_{false};

    std::atomic<uint64_t> poolBusyNs_{0};
    std::atomic<uint64_t> poolIdleNs_{0};
    std::atomic<uint64_t> poolWorkerNs_{0};
    std::atomic<uint64_t> poolTasks_{0};
    std::atomic<uint64_t> poolSteals_{0};
    std::atomic<uint64_t> batchJobs_{0};
    std::atomic<uint64_t> batchJobNs_{0};
    std::atomic<uint64_t> fpgaRuns_{0};
    std::atomic<uint64_t> fpgaPaperRuBits_{0};
    std::atomic<uint64_t> fpgaOccupancyRuBits_{0};

    friend struct WorkShardHandle;
};

/**
 * RAII work scope: latches the counts and the clock on construction
 * (when enabled), records in the destructor. The counts functor is
 * only invoked on the enabled path, so disabled sites never compute
 * byte models.
 */
class WorkScope
{
  public:
    template <typename CountsFn>
    WorkScope(const char *name, CountsFn &&counts)
    {
        WorkLedger &ledger = WorkLedger::instance();
        if (ledger.enabled()) {
            active_ = true;
            name_ = name;
            counts_ = counts();
            startNs_ = Profiler::nowNs();
        }
    }

    ~WorkScope()
    {
        if (active_) {
            WorkLedger::instance().record(
                name_, counts_, Profiler::nowNs() - startNs_);
        }
    }

    WorkScope(const WorkScope &) = delete;
    WorkScope &operator=(const WorkScope &) = delete;

  private:
    bool active_ = false;
    const char *name_ = "";
    WorkCounts counts_;
    uint64_t startNs_ = 0;
};

#define ACAMAR_WORK_CONCAT2(a, b) a##b
#define ACAMAR_WORK_CONCAT(a, b) ACAMAR_WORK_CONCAT2(a, b)

/**
 * Open a work scope; `name` must be a string literal and the
 * variadic tail an expression yielding WorkCounts, evaluated only
 * when the ledger is running. Place the site above the kernel's
 * `// acamar: hot-loop` marker (the `ledger-coverage` lint rule
 * checks that every marked sparse kernel has one).
 */
#define ACAMAR_WORK_SCOPE(name, ...)                                       \
    ::acamar::WorkScope ACAMAR_WORK_CONCAT(acamar_work_scope_,             \
                                           __LINE__)((name), [&] {         \
        return __VA_ARGS__;                                                \
    })

/** True when the ledger is currently collecting. */
inline bool
workLedgerEnabled()
{
    return WorkLedger::instance().enabled();
}

} // namespace acamar

#endif // ACAMAR_OBS_WORK_LEDGER_HH
