/**
 * @file
 * ICAP (Internal Configuration Access Port) timing model.
 *
 * Per Section VIII-A: the ICAP core runs at 200 MHz and moves
 * partial bitstreams at 6.4 Gb/s; reconfiguration time is bitstream
 * size over that rate.
 */

#ifndef ACAMAR_FPGA_ICAP_HH
#define ACAMAR_FPGA_ICAP_HH

#include <cstdint>
#include <string>

#include "fpga/device.hh"
#include "sim/event_queue.hh"

namespace acamar {

/** Converts partial-bitstream sizes to reconfiguration time. */
class IcapModel
{
  public:
    explicit IcapModel(const FpgaDevice &device);

    /** Seconds to load a partial bitstream of `bits`. */
    double reconfigSeconds(int64_t bits) const;

    /** Same, in global Ticks (ps). */
    Tick reconfigTicks(int64_t bits) const;

    /** Same, in kernel-clock cycles of the device. */
    Cycles reconfigKernelCycles(int64_t bits) const;

    /**
     * Emit an icap_transfer trace event for one partial bitstream
     * moving through the port (no-op with tracing off).
     *
     * @param region DFX region name ("spmv", "solver").
     * @param bits partial bitstream size.
     * @param start_cycles kernel-clock position on the run timeline.
     */
    void traceTransfer(const std::string &region, int64_t bits,
                       Cycles start_cycles) const;

  private:
    double bitsPerSecond_;
    double kernelClockHz_;
};

} // namespace acamar

#endif // ACAMAR_FPGA_ICAP_HH
