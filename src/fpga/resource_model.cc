#include "fpga/resource_model.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"

namespace acamar {
namespace {

// Approximate Vitis HLS fp32 operator costs (post-implementation
// ballpark for UltraScale+): one fp32 multiplier is 3 DSPs, one
// fp32 adder 2 DSPs, plus control logic.
constexpr KernelResources kFp32Mac = {.luts = 800, .ffs = 1200,
                                      .dsps = 5, .brams = 0};
constexpr KernelResources kRowSequencer = {.luts = 1500, .ffs = 2200,
                                           .dsps = 0, .brams = 2};
constexpr KernelResources kDenseBlock = {.luts = 9000, .ffs = 14000,
                                         .dsps = 40, .brams = 8};
constexpr KernelResources kAnalyzers = {.luts = 14000, .ffs = 20000,
                                        .dsps = 8, .brams = 16};

} // namespace

ResourceModel::ResourceModel(const FpgaDevice &device) : device_(device)
{
    device_.validate();
}

KernelResources
ResourceModel::macLane() const
{
    return kFp32Mac;
}

KernelResources
ResourceModel::spmvUnit(int unroll) const
{
    ACAMAR_CHECK(unroll >= 1) << "unroll factor must be >= 1";
    KernelResources r = kFp32Mac * unroll;
    // Adder tree: unroll-1 fp32 adders at 2 DSPs + logic each.
    const int64_t adders = std::max(0, unroll - 1);
    r += KernelResources{.luts = 350 * adders, .ffs = 500 * adders,
                         .dsps = 2 * adders, .brams = 0};
    r += kRowSequencer;
    return r;
}

KernelResources
ResourceModel::denseUnits() const
{
    return kDenseBlock;
}

KernelResources
ResourceModel::analyzerUnits() const
{
    return kAnalyzers;
}

double
ResourceModel::areaMm2(const KernelResources &r) const
{
    ACAMAR_CHECK(r.luts >= 0 && r.ffs >= 0 && r.dsps >= 0 &&
                 r.brams >= 0)
        << "negative resource bundle";
    // Die area prorated by each resource class's share of the
    // device, weighted by typical silicon footprint split
    // (LUT/FF fabric ~70%, DSP ~20%, BRAM ~10% of the die).
    const auto &cap = device_.capacity;
    const double fabric =
        0.5 * (static_cast<double>(r.luts) / cap.luts +
               static_cast<double>(r.ffs) / cap.ffs);
    const double dsp = static_cast<double>(r.dsps) / cap.dsps;
    const double bram = static_cast<double>(r.brams) / cap.brams;
    const double frac = 0.70 * fabric + 0.20 * dsp + 0.10 * bram;
    return frac * device_.dieAreaMm2;
}

double
ResourceModel::utilizationFraction(const KernelResources &r) const
{
    ACAMAR_CHECK(r.luts >= 0 && r.ffs >= 0 && r.dsps >= 0 &&
                 r.brams >= 0)
        << "negative resource bundle";
    const auto &cap = device_.capacity;
    return std::max({static_cast<double>(r.luts) / cap.luts,
                     static_cast<double>(r.ffs) / cap.ffs,
                     static_cast<double>(r.dsps) / cap.dsps,
                     static_cast<double>(r.brams) / cap.brams});
}

} // namespace acamar
