/**
 * @file
 * HBM bandwidth (roofline) model.
 *
 * SpMV is frequently memory-bound; every kernel timing in accel/
 * takes the max of its compute cycles and the cycles the HBM system
 * needs to stream the kernel's bytes.
 */

#ifndef ACAMAR_FPGA_MEMORY_MODEL_HH
#define ACAMAR_FPGA_MEMORY_MODEL_HH

#include <cstdint>

#include "fpga/device.hh"
#include "sim/event_queue.hh"

namespace acamar {

/** Streaming-bandwidth cost model for one FPGA card. */
class MemoryModel
{
  public:
    explicit MemoryModel(const FpgaDevice &device);

    /** Kernel-clock cycles needed to stream `bytes`. */
    Cycles streamCycles(int64_t bytes) const;

    /** Bytes one CSR SpMV pass touches (values+colidx+x+y+rowptr). */
    static int64_t spmvBytes(int64_t nnz, int64_t rows);

    /** Bytes a dense n-element kernel streams per vector operand. */
    static int64_t
    vectorBytes(int64_t n, int operands)
    {
        return n * 4 * operands; // fp32
    }

  private:
    double bytesPerCycle_;
};

} // namespace acamar

#endif // ACAMAR_FPGA_MEMORY_MODEL_HH
