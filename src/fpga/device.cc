#include "fpga/device.hh"

#include "common/check.hh"

namespace acamar {

KernelResources &
KernelResources::operator+=(const KernelResources &o)
{
    luts += o.luts;
    ffs += o.ffs;
    dsps += o.dsps;
    brams += o.brams;
    return *this;
}

KernelResources
KernelResources::operator*(int64_t k) const
{
    return {luts * k, ffs * k, dsps * k, brams * k};
}

void
FpgaDevice::validate() const
{
    ACAMAR_CHECK(capacity.luts > 0 && capacity.ffs > 0 &&
                 capacity.dsps > 0 && capacity.brams > 0)
        << "device '" << name << "' has an empty resource class";
    ACAMAR_CHECK(dieAreaMm2 > 0.0)
        << "device '" << name << "' has no die area";
    ACAMAR_CHECK(kernelClockHz > 0.0 && icapClockHz > 0.0)
        << "device '" << name << "' has a non-positive clock";
    ACAMAR_CHECK(icapBitsPerSecond > 0.0)
        << "device '" << name << "' has no ICAP bandwidth";
    ACAMAR_CHECK(hbmBytesPerSecond > 0.0 && portBytesPerCycle > 0.0)
        << "device '" << name << "' has no memory bandwidth";
    ACAMAR_CHECK_FINITE(memBytesPerCycle())
        << "device '" << name << "'";
}

FpgaDevice
FpgaDevice::alveoU55c()
{
    FpgaDevice dev;
    dev.name = "Xilinx Alveo u55c";
    // Virtex UltraScale+ XCU55C public resource counts.
    dev.capacity = {.luts = 1303680, .ffs = 2607360, .dsps = 9024,
                    .brams = 2016};
    dev.dieAreaMm2 = 620.0;
    dev.kernelClockHz = 300e6;   // typical optimized HLS kernel clock
    dev.icapClockHz = 200e6;     // ICAP clock per Section VIII-A
    dev.icapBitsPerSecond = 6.4e9; // 6.4 Gb/s per Section VIII-A
    dev.hbmBytesPerSecond = 460e9; // HBM2 aggregate
    dev.portBytesPerCycle = 128.0; // two 512-bit AXI ports
    return dev;
}

} // namespace acamar
