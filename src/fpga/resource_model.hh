/**
 * @file
 * HLS resource/area model.
 *
 * Maps architectural units (a U-lane SpMV kernel, the static dense
 * kernels, the analyzer units) to fabric resources and die area.
 * Constants approximate Vitis HLS fp32 implementation reports; what
 * matters for reproducing Figure 10 is that per-lane cost is linear
 * in the unroll factor and dwarfs the static overhead.
 */

#ifndef ACAMAR_FPGA_RESOURCE_MODEL_HH
#define ACAMAR_FPGA_RESOURCE_MODEL_HH

#include "fpga/device.hh"

namespace acamar {

/** Resource/area estimation for Acamar's units. */
class ResourceModel
{
  public:
    /** @param device the card whose area scale to use. */
    explicit ResourceModel(const FpgaDevice &device);

    /** One fp32 MAC lane (DSP-based) incl. its slice of the tree. */
    KernelResources macLane() const;

    /** A U-lane SpMV unit: lanes + adder tree + row sequencer. */
    KernelResources spmvUnit(int unroll) const;

    /** The fixed dense-kernel block (dot/axpy/waxpby engines). */
    KernelResources denseUnits() const;

    /**
     * The statically-programmed analyzers (Matrix Structure,
     * Fine-Grained Reconfiguration incl. tBuffer, Initialize
     * sequencing, Solver Modifier).
     */
    KernelResources analyzerUnits() const;

    /** Die area consumed by a resource bundle. */
    double areaMm2(const KernelResources &r) const;

    /**
     * Fraction of the device each resource class uses; the maximum
     * over classes is the practical utilization bound.
     */
    double utilizationFraction(const KernelResources &r) const;

    /** The modeled device. */
    const FpgaDevice &device() const { return device_; }

  private:
    FpgaDevice device_;
};

} // namespace acamar

#endif // ACAMAR_FPGA_RESOURCE_MODEL_HH
