#include "fpga/memory_model.hh"

#include <cmath>

#include "common/check.hh"

namespace acamar {

MemoryModel::MemoryModel(const FpgaDevice &device)
    : bytesPerCycle_(device.memBytesPerCycle())
{
    ACAMAR_CHECK(bytesPerCycle_ > 0.0) << "device has no bandwidth";
}

Cycles
MemoryModel::streamCycles(int64_t bytes) const
{
    ACAMAR_CHECK(bytes >= 0) << "negative byte count";
    return static_cast<Cycles>(
        std::ceil(static_cast<double>(bytes) / bytesPerCycle_));
}

int64_t
MemoryModel::spmvBytes(int64_t nnz, int64_t rows)
{
    // Per nonzero: 4B value + 4B column index + 4B x-gather.
    // Per row: 8B rowPtr entry (amortized) + 4B y write.
    return nnz * 12 + rows * 12;
}

} // namespace acamar
