/**
 * @file
 * HLS pipeline timing model.
 *
 * Vitis HLS reports kernels as (initiation interval, depth, trip
 * count); total cycles = depth + II * (trips - 1). The paper feeds
 * its cycle-level simulator with HLS co-simulation numbers of this
 * exact shape — this model re-derives them (DESIGN.md substitution
 * table).
 */

#ifndef ACAMAR_FPGA_HLS_KERNEL_HH
#define ACAMAR_FPGA_HLS_KERNEL_HH

#include <cstdint>

#include "sim/event_queue.hh"

namespace acamar {

/** One pipelined HLS loop. */
struct HlsPipelineModel {
    int initiationInterval = 1; //!< cycles between loop iterations
    int depth = 8;              //!< pipeline fill latency

    /** Total cycles for `trips` loop iterations (0 trips = 0). */
    Cycles
    cycles(int64_t trips) const
    {
        if (trips <= 0)
            return 0;
        return static_cast<Cycles>(depth) +
               static_cast<Cycles>(initiationInterval) *
                   static_cast<Cycles>(trips - 1);
    }
};

/** Default pipeline shapes for Acamar's kernels. */
namespace hls_defaults {

/** SpMV beat loop: II=1 once lanes are filled, deep fp32 tree. */
inline HlsPipelineModel
spmvPipeline()
{
    return {.initiationInterval = 1, .depth = 24};
}

/** Dense dot-product loop (16-lane reduction). */
inline HlsPipelineModel
dotPipeline()
{
    return {.initiationInterval = 1, .depth = 16};
}

/** Dense axpy/waxpby loop (16-lane streaming). */
inline HlsPipelineModel
axpyPipeline()
{
    return {.initiationInterval = 1, .depth = 10};
}

/** Structure-analysis scan over nnz entries. */
inline HlsPipelineModel
scanPipeline()
{
    return {.initiationInterval = 1, .depth = 6};
}

/** Lanes in the static dense kernel units. */
constexpr int kDenseLanes = 16;

/**
 * Achievable-clock penalty of a U-lane SpMV unit relative to the
 * device's nominal kernel clock. Wide fp32 reduction trees lengthen
 * the critical path and routing congestion grows with lane count,
 * so implementations past ~16 lanes close timing at a lower fmax.
 * Expressed as a cycle-time multiplier (>= 1) so cycle counts stay
 * in nominal-clock equivalents.
 */
inline double
clockPenalty(int unroll)
{
    constexpr int knee = 12;
    constexpr double slope = 0.04;
    if (unroll <= knee)
        return 1.0;
    return 1.0 + slope * static_cast<double>(unroll - knee);
}

/** Extra pipeline depth of a U-wide adder tree (2 stages/level). */
inline int
treeDepth(int unroll)
{
    int levels = 0;
    int v = 1;
    while (v < unroll) {
        v *= 2;
        ++levels;
    }
    return 2 * levels;
}

} // namespace hls_defaults

} // namespace acamar

#endif // ACAMAR_FPGA_HLS_KERNEL_HH
