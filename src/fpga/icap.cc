#include "fpga/icap.hh"

#include <cmath>

#include "common/check.hh"
#include "obs/trace.hh"
#include "sim/clock_domain.hh"

namespace acamar {

IcapModel::IcapModel(const FpgaDevice &device)
    : bitsPerSecond_(device.icapBitsPerSecond),
      kernelClockHz_(device.kernelClockHz)
{
    ACAMAR_CHECK(bitsPerSecond_ > 0.0) << "ICAP rate must be positive";
}

double
IcapModel::reconfigSeconds(int64_t bits) const
{
    ACAMAR_CHECK(bits >= 0) << "negative bitstream size";
    return static_cast<double>(bits) / bitsPerSecond_;
}

Tick
IcapModel::reconfigTicks(int64_t bits) const
{
    return static_cast<Tick>(std::llround(
        reconfigSeconds(bits) * static_cast<double>(kTicksPerSecond)));
}

Cycles
IcapModel::reconfigKernelCycles(int64_t bits) const
{
    return static_cast<Cycles>(
        std::ceil(reconfigSeconds(bits) * kernelClockHz_));
}

void
IcapModel::traceTransfer(const std::string &region, int64_t bits,
                         Cycles start_cycles) const
{
    ACAMAR_TRACE(IcapTransferEvent{region, bits,
                                   reconfigKernelCycles(bits),
                                   start_cycles});
}

} // namespace acamar
