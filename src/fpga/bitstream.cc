#include "fpga/bitstream.hh"

#include <cmath>

#include "common/check.hh"

namespace acamar {

int64_t
BitstreamModel::partialBitstreamBits(const KernelResources &region)
{
    ACAMAR_CHECK(region.luts >= 0 && region.ffs >= 0 &&
                 region.dsps >= 0 && region.brams >= 0)
        << "negative DFX region";
    // Configuration memory per resource (UltraScale+ ballpark):
    // a LUT carries 64 bits of INIT plus routing; DSPs and BRAMs sit
    // in dedicated columns with large frame footprints.
    const double bits = 256.0 * static_cast<double>(region.luts) +
                        64.0 * static_cast<double>(region.ffs) +
                        16384.0 * static_cast<double>(region.dsps) +
                        36864.0 * static_cast<double>(region.brams);
    return static_cast<int64_t>(std::llround(bits));
}

KernelResources
BitstreamModel::regionFor(const KernelResources &largest)
{
    // 30% placement margin, rounded up.
    auto pad = [](int64_t v) {
        return static_cast<int64_t>(std::ceil(1.3 * static_cast<double>(v)));
    };
    return {pad(largest.luts), pad(largest.ffs), pad(largest.dsps),
            pad(largest.brams)};
}

} // namespace acamar
