/**
 * @file
 * Partial-bitstream size model.
 *
 * DFX reconfiguration time is proportional to the partial bitstream,
 * which in turn scales with the reconfigurable region's frame count.
 * We size the region for the largest SpMV unit it must ever host and
 * charge configuration bits per contained resource.
 */

#ifndef ACAMAR_FPGA_BITSTREAM_HH
#define ACAMAR_FPGA_BITSTREAM_HH

#include <cstdint>

#include "fpga/device.hh"

namespace acamar {

/** Estimate partial-bitstream bits for a reconfigurable region. */
class BitstreamModel
{
  public:
    /**
     * Bits to configure a region holding the given resources.
     * UltraScale+ configuration frames are 93 x 32-bit words; the
     * per-resource constants fold frame overhead in.
     */
    static int64_t partialBitstreamBits(const KernelResources &region);

    /**
     * Region sizing: DFX regions are provisioned for the *largest*
     * configuration they host, padded by a placement margin.
     */
    static KernelResources regionFor(const KernelResources &largest);
};

} // namespace acamar

#endif // ACAMAR_FPGA_BITSTREAM_HH
