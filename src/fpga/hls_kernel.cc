#include "fpga/hls_kernel.hh"

// Header-only models; this translation unit exists so the build
// system has a home for future non-inline pipeline calibration code.

namespace acamar {
} // namespace acamar
