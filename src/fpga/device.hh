/**
 * @file
 * FPGA device descriptions.
 *
 * The paper targets a Xilinx Alveo u55c (Virtex UltraScale+, HBM2).
 * This model carries the resource counts, clocks and bandwidths the
 * timing and area models need; it is the stand-in for the physical
 * card (see DESIGN.md substitution table).
 */

#ifndef ACAMAR_FPGA_DEVICE_HH
#define ACAMAR_FPGA_DEVICE_HH

#include <algorithm>
#include <cstdint>
#include <string>

namespace acamar {

/** A bundle of FPGA fabric resources. */
struct KernelResources {
    int64_t luts = 0;
    int64_t ffs = 0;
    int64_t dsps = 0;
    int64_t brams = 0;

    KernelResources &operator+=(const KernelResources &o);
    friend KernelResources operator+(KernelResources a,
                                     const KernelResources &b)
    {
        a += b;
        return a;
    }
    KernelResources operator*(int64_t k) const;
};

/** Static description of one FPGA card. */
struct FpgaDevice {
    std::string name;
    KernelResources capacity;   //!< total fabric resources
    double dieAreaMm2;          //!< total die area
    double kernelClockHz;       //!< achievable HLS kernel clock
    double icapClockHz;         //!< configuration port clock
    double icapBitsPerSecond;   //!< partial-reconfiguration speed
    double hbmBytesPerSecond;   //!< aggregate memory bandwidth
    double portBytesPerCycle;   //!< one kernel's AXI port width

    /**
     * Bytes one kernel can stream per kernel-clock cycle: the
     * narrower of its AXI port and its share of HBM. A single
     * 512-bit AXI port moves 64 B/cycle, which is what bounds an
     * HLS SpMV kernel long before aggregate HBM bandwidth does.
     */
    double
    memBytesPerCycle() const
    {
        return std::min(hbmBytesPerSecond / kernelClockHz,
                        portBytesPerCycle);
    }

    /**
     * Contract-check the description: every capacity class, clock
     * and bandwidth must be positive and finite. Models that consume
     * a device call this once at construction so a half-initialized
     * card cannot silently skew utilization or timing numbers.
     */
    void validate() const;

    /** The paper's target card. */
    static FpgaDevice alveoU55c();
};

} // namespace acamar

#endif // ACAMAR_FPGA_DEVICE_HH
