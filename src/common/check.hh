/**
 * @file
 * Runtime-contract macros: the one way this codebase states and
 * enforces invariants.
 *
 * Acamar's results are numbers (residuals, cycle counts, resource
 * fractions) rather than behaviors, so a silent NaN or an
 * out-of-range index produces *plausible wrong output*, not a crash.
 * These macros make such states loud:
 *
 *   ACAMAR_CHECK(cond) << "message " << detail;
 *   ACAMAR_CHECK_FINITE(residual) << "after iteration " << k;
 *   ACAMAR_CHECK_BOUNDS(row, 0, numRows());
 *   ACAMAR_DCHECK(expensiveInvariant());   // debug builds only
 *
 * A failed check reports the expression, the streamed message and
 * the source location, then aborts the process. Tests that want to
 * exercise failure paths without dying install a ScopedCheckThrowMode,
 * which turns failures into CheckError exceptions instead.
 *
 * Failure-path macro arguments may be evaluated a second time while
 * composing the message; never pass expressions with side effects.
 */

#ifndef ACAMAR_COMMON_CHECK_HH
#define ACAMAR_COMMON_CHECK_HH

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

namespace acamar {

/** What a failed contract does to the process. */
enum class CheckFailMode {
    Abort,  //!< print to stderr and std::abort() (default)
    Throw,  //!< throw CheckError (tests of failure paths)
};

/** Exception thrown by failed contracts under CheckFailMode::Throw. */
class CheckError : public std::runtime_error
{
  public:
    CheckError(const std::string &what, const char *file, int line)
        : std::runtime_error(what), file_(file), line_(line)
    {}

    /** Source file of the failed check. */
    const char *file() const { return file_; }

    /** Source line of the failed check. */
    int line() const { return line_; }

  private:
    const char *file_;
    int line_;
};

namespace check_detail {

/** Current failure mode of this thread. */
CheckFailMode failMode();

/** Install a failure mode; returns the previous one. */
CheckFailMode setFailMode(CheckFailMode mode);

/**
 * Message collector for one failed check. Constructed only on the
 * failure path; its destructor reports (and never returns under
 * Abort mode).
 */
class Failer
{
  public:
    Failer(const char *file, int line, const char *expr);

    /** Reports the failure; throws under CheckFailMode::Throw. */
    ~Failer() noexcept(false);

    /** Stream to append the user message to. */
    std::ostream &stream() { return os_; }

  private:
    const char *file_;
    int line_;
    std::ostringstream os_;
};

/** Swallows the stream expression so ACAMAR_CHECK has type void. */
struct Voidify {
    void operator&(std::ostream &) const {}
};

/** isfinite through a double widen (accepts any arithmetic type). */
inline bool
finite(double v)
{
    return std::isfinite(v);
}

} // namespace check_detail

/**
 * RAII guard that makes failed checks throw CheckError for its
 * lifetime. Intended for tests that assert contracts fire.
 */
class ScopedCheckThrowMode
{
  public:
    ScopedCheckThrowMode()
        : prev_(check_detail::setFailMode(CheckFailMode::Throw))
    {}

    ~ScopedCheckThrowMode() { check_detail::setFailMode(prev_); }

    ScopedCheckThrowMode(const ScopedCheckThrowMode &) = delete;
    ScopedCheckThrowMode &operator=(const ScopedCheckThrowMode &) =
        delete;

  private:
    CheckFailMode prev_;
};

/**
 * Enforce an invariant in every build type. Append context with
 * operator<<; the message is only composed on failure.
 */
#define ACAMAR_CHECK(cond)                                                 \
    (static_cast<bool>(cond))                                              \
        ? (void)0                                                          \
        : ::acamar::check_detail::Voidify() &                              \
              ::acamar::check_detail::Failer(__FILE__, __LINE__, #cond)    \
                  .stream()

/**
 * Debug-only invariant: compiled (so it cannot rot) but neither
 * evaluated nor enforced when NDEBUG is set. Use for per-element
 * checks inside hot loops.
 */
#ifdef NDEBUG
#define ACAMAR_DCHECK(cond)                                                \
    while (false)                                                          \
    ACAMAR_CHECK(cond)
#else
#define ACAMAR_DCHECK(cond) ACAMAR_CHECK(cond)
#endif

/** Enforce that a scalar is neither NaN nor infinite. */
#define ACAMAR_CHECK_FINITE(val)                                           \
    ACAMAR_CHECK(                                                          \
        ::acamar::check_detail::finite(static_cast<double>(val)))          \
        << #val " = " << static_cast<double>(val) << " is not finite; "

/** Debug-only ACAMAR_CHECK_FINITE. */
#ifdef NDEBUG
#define ACAMAR_DCHECK_FINITE(val)                                          \
    while (false)                                                          \
    ACAMAR_CHECK_FINITE(val)
#else
#define ACAMAR_DCHECK_FINITE(val) ACAMAR_CHECK_FINITE(val)
#endif

/** Enforce lo <= idx < hi (half-open, the container convention). */
#define ACAMAR_CHECK_BOUNDS(idx, lo, hi)                                   \
    ACAMAR_CHECK((idx) >= (lo) && (idx) < (hi))                            \
        << #idx " = " << (idx) << " outside [" << (lo) << ", " << (hi)     \
        << "); "

/** Debug-only ACAMAR_CHECK_BOUNDS. */
#ifdef NDEBUG
#define ACAMAR_DCHECK_BOUNDS(idx, lo, hi)                                  \
    while (false)                                                          \
    ACAMAR_CHECK_BOUNDS(idx, lo, hi)
#else
#define ACAMAR_DCHECK_BOUNDS(idx, lo, hi) ACAMAR_CHECK_BOUNDS(idx, lo, hi)
#endif

} // namespace acamar

#endif // ACAMAR_COMMON_CHECK_HH
