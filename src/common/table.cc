#include "common/table.hh"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/check.hh"

namespace acamar {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    ACAMAR_CHECK(!headers_.empty()) << "table needs at least one column";
}

Table &
Table::newRow()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &v)
{
    ACAMAR_CHECK(!rows_.empty()) << "cell() before newRow()";
    rows_.back().push_back(v);
    return *this;
}

Table &
Table::cell(double v, int precision)
{
    return cell(formatDouble(v, precision));
}

Table &
Table::cell(int64_t v)
{
    return cell(std::to_string(v));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &v = c < row.size() ? row[c] : "";
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << v;
        }
        os << '\n';
    };

    print_row(headers_);
    size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);
}

std::string
formatDouble(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

double
geomean(const std::vector<double> &vals)
{
    if (vals.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : vals) {
        ACAMAR_CHECK(v > 0.0) << "geomean needs positive values";
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(vals.size()));
}

} // namespace acamar
