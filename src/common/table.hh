/**
 * @file
 * ASCII table and CSV rendering used by the benchmark harnesses to
 * print paper-style tables and figure series.
 */

#ifndef ACAMAR_COMMON_TABLE_HH
#define ACAMAR_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace acamar {

/**
 * A simple column-aligned text table. Rows are strings; numeric
 * helpers format with a fixed precision. Used by every bench binary
 * so tables look uniform.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Start a new empty row. */
    Table &newRow();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &v);

    /** Append a formatted double cell (fixed, given precision). */
    Table &cell(double v, int precision = 3);

    /** Append an integer cell. */
    Table &cell(int64_t v);

    /** Render with aligned columns and a header separator. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows so far. */
    size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double like "3.14" with the given precision. */
std::string formatDouble(double v, int precision = 3);

/** Geometric mean of strictly positive values; 0 on empty input. */
double geomean(const std::vector<double> &vals);

} // namespace acamar

#endif // ACAMAR_COMMON_TABLE_HH
