/**
 * @file
 * Capability-annotated synchronization layer: the one way this
 * codebase locks.
 *
 * Raw std::mutex gives review two jobs the compiler could do: check
 * that guarded state is only touched under its lock, and check that
 * locks nest in one global order. The ThreadPool lost-wakeup races
 * (see exec/thread_pool.cc history) were exactly the class of bug
 * these checks catch. This header makes both machine-enforced:
 *
 *  - **Capabilities.** `Mutex`, `CondVar` and the RAII
 *    `MutexLock`/`ReleasableMutexLock` carry Clang thread-safety
 *    attributes (no-ops on other compilers). Annotate guarded state
 *    with `ACAMAR_GUARDED_BY(mu)` and lock-requiring helpers with
 *    `ACAMAR_REQUIRES(mu)`; building with `-DACAMAR_THREAD_SAFETY=ON`
 *    under Clang turns violations into `-Wthread-safety` diagnostics
 *    (errors in CI).
 *
 *  - **Lock ranks.** Every `Mutex` is constructed with a `LockRank`.
 *    A thread may only acquire a mutex whose rank is strictly greater
 *    than every mutex it already holds; any out-of-rank acquisition
 *    panics immediately with the thread's held-lock set, turning a
 *    maybe-someday deadlock into a deterministic abort at the first
 *    wrong nesting — on any thread, in any build. Define
 *    `ACAMAR_SYNC_NO_RANK_CHECKS` to compile the checker out.
 *
 *  - **No lost wakeups by construction.** `CondVar::wait` only
 *    exists in predicate form, so every wait re-checks its condition
 *    under the lock (the `cond-wait-predicate` lint rule keeps it
 *    that way; `raw-sync` bans the std primitives outside this
 *    header).
 *
 * The rank table below is the global lock order. When adding a
 * mutex, place it by answering: "which locks can be held when this
 * one is acquired?" — they must all rank lower. DESIGN.md §12
 * documents the discipline.
 */

#ifndef ACAMAR_COMMON_SYNC_HH
#define ACAMAR_COMMON_SYNC_HH

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>

#include "common/check.hh"

// ---- Clang thread-safety attribute macros -----------------------------
//
// The attribute spellings follow the Clang thread-safety analysis
// documentation (and abseil's thread_annotations.h). On compilers
// without the attributes the macros expand to nothing, so GCC builds
// are unaffected and the annotations cannot rot out of the build.

#if defined(__clang__)
#define ACAMAR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ACAMAR_THREAD_ANNOTATION(x)
#endif

/** Marks a class as a lockable capability (e.g. a mutex type). */
#define ACAMAR_CAPABILITY(x) ACAMAR_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class that acquires in its ctor, releases in dtor. */
#define ACAMAR_SCOPED_CAPABILITY ACAMAR_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding `x`. */
#define ACAMAR_GUARDED_BY(x) ACAMAR_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is guarded by `x`. */
#define ACAMAR_PT_GUARDED_BY(x) ACAMAR_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function that must be called with the listed capabilities held. */
#define ACAMAR_REQUIRES(...) \
    ACAMAR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that acquires the listed capabilities (or `this`). */
#define ACAMAR_ACQUIRE(...) \
    ACAMAR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases the listed capabilities (or `this`). */
#define ACAMAR_RELEASE(...) \
    ACAMAR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that acquires on the given return value. */
#define ACAMAR_TRY_ACQUIRE(...) \
    ACAMAR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function that must NOT be called with the capabilities held. */
#define ACAMAR_EXCLUDES(...) \
    ACAMAR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Escape hatch; use only with a comment saying why. */
#define ACAMAR_NO_THREAD_SAFETY_ANALYSIS \
    ACAMAR_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---- Lock-rank checker toggle -----------------------------------------

#ifndef ACAMAR_SYNC_NO_RANK_CHECKS
#define ACAMAR_SYNC_RANK_CHECKS 1
#else
#define ACAMAR_SYNC_RANK_CHECKS 0
#endif

namespace acamar {

/**
 * The global lock order, one rank per mutex family. Acquisition must
 * be in strictly increasing rank order per thread; two mutexes of
 * the same rank may never be held simultaneously (same-rank members
 * of one family, e.g. the per-worker pool queues, are taken one at a
 * time by design).
 *
 * Current nesting facts the table encodes:
 *  - the metrics sampler parks on its own wakeup lock and releases
 *    it before touching anything else, and metric handles are only
 *    registered/snapshotted with no other lock held, so the two
 *    metrics ranks sit at the very bottom (a sampler pass may still
 *    emit trace events and read every other subsystem); the
 *    per-histogram record locks are kLeaf;
 *  - TraceSession drains per-thread stages while holding the sink
 *    directory lock (kTraceSinks -> kTraceStage);
 *  - the Profiler merges per-thread shards while holding its state
 *    lock (kProfilerState -> kProfilerShard); the WorkLedger follows
 *    the same shape with its own pair of ranks interleaved so a
 *    ledger drain may read profiler-adjacent state but never the
 *    reverse;
 *  - pool workers never hold a pool lock while running a task, so
 *    obs ranks sit below the pool ranks and instrumented tasks can
 *    take them freely;
 *  - kLeaf is for strictly-leaf locks (e.g. a test sink's own
 *    counter): nothing may be acquired while holding one.
 */
enum class LockRank : int {
    kMetricsSampler = 4,  //!< obs/metrics_sampler.hh wakeup state
    kMetricsRegistry = 5, //!< obs/metrics.hh directory + histograms
    kStatRegistry = 10,   //!< obs/stats_registry.hh directory
    kTraceSinks = 20,     //!< obs/trace.hh sink + stage directory
    kTraceStage = 30,     //!< obs/trace.hh per-thread staging buffer
    kProfilerState = 40,  //!< obs/profiler.cc shard directory
    kWorkLedgerState = 44, //!< obs/work_ledger.cc shard directory
    kProfilerShard = 50,  //!< obs/profiler.cc per-thread shard
    kWorkLedgerShard = 54, //!< obs/work_ledger.cc per-thread shard
    kPoolQueue = 60,      //!< exec/thread_pool.hh per-worker deque
    kPoolSleep = 70,      //!< exec/thread_pool.hh idle-worker wakeup
    kPoolWait = 80,       //!< exec/thread_pool.hh wait()/error state
    kLeaf = 1000,         //!< leaf locks: acquire nothing beyond
};

/**
 * A ranked, capability-annotated mutex. Construct with the rank slot
 * from the table above and a short diagnostic name; lock via
 * MutexLock (preferred) or lock()/unlock() in the rare manual case.
 */
class ACAMAR_CAPABILITY("mutex") Mutex
{
  public:
    explicit Mutex(LockRank rank, const char *name)
        : rank_(rank), name_(name)
    {}

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    /**
     * Acquire. Panics (lock-rank violation) if this thread already
     * holds a mutex of equal or greater rank — checked before
     * blocking, so a wrong nesting aborts even when it would not
     * have deadlocked this time.
     */
    void lock() ACAMAR_ACQUIRE();

    /** Release. */
    void unlock() ACAMAR_RELEASE();

    /**
     * Non-blocking acquire. Rank discipline is enforced exactly as
     * for lock(): an out-of-rank tryLock is a bug, not a probe.
     */
    bool tryLock() ACAMAR_TRY_ACQUIRE(true);

    /** This mutex's slot in the global lock order. */
    LockRank rank() const { return rank_; }

    /** Diagnostic name printed in lock-rank violation reports. */
    const char *name() const { return name_; }

  private:
    friend class CondVar;

    std::mutex m_;
    const LockRank rank_;
    const char *const name_;
};

/** RAII lock: acquires in the constructor, releases in the dtor. */
class ACAMAR_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) ACAMAR_ACQUIRE(mu) : mu_(&mu)
    {
        mu_->lock();
    }

    ~MutexLock() ACAMAR_RELEASE() { mu_->unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    friend class CondVar;

    Mutex *const mu_;
};

/**
 * RAII lock that can be released before scope end — for the
 * "mutate under the lock, then notify/rethrow/report outside it"
 * shape. Calling release() twice is a contract violation.
 */
class ACAMAR_SCOPED_CAPABILITY ReleasableMutexLock
{
  public:
    explicit ReleasableMutexLock(Mutex &mu) ACAMAR_ACQUIRE(mu)
        : mu_(&mu)
    {
        mu_->lock();
    }

    ~ReleasableMutexLock() ACAMAR_RELEASE()
    {
        if (mu_)
            mu_->unlock();
    }

    /** Release now instead of at scope end. */
    void
    release() ACAMAR_RELEASE()
    {
        ACAMAR_DCHECK(mu_) << "ReleasableMutexLock released twice";
        mu_->unlock();
        mu_ = nullptr;
    }

    ReleasableMutexLock(const ReleasableMutexLock &) = delete;
    ReleasableMutexLock &operator=(const ReleasableMutexLock &) = delete;

  private:
    Mutex *mu_;
};

/**
 * Condition variable over Mutex. Wait exists only in predicate form:
 * the lost-wakeup/spurious-wakeup bugs of bare wait() cannot be
 * written through this API (and the `cond-wait-predicate` lint rule
 * rejects bare waits textually, wrapper or not).
 */
class CondVar
{
  public:
    CondVar() = default;

    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /**
     * Atomically release `lk`'s mutex and sleep until `pred()` is
     * true, with the mutex re-held both for every predicate check
     * and on return. The mutex stays in this thread's rank set for
     * the duration: the thread is blocked or evaluating the
     * predicate under the lock, so it cannot acquire elsewhere
     * out of order.
     */
    template <typename Pred>
    void
    wait(MutexLock &lk, Pred pred)
    {
        std::unique_lock<std::mutex> native(lk.mu_->m_,
                                            std::adopt_lock);
        cv_.wait(native, std::move(pred));
        native.release();
    }

    /**
     * Predicate wait with a timeout: sleeps until `pred()` is true
     * or `timeout` elapses, whichever comes first, re-checking the
     * predicate under the lock exactly like wait(). Returns pred()'s
     * value on wakeup, so a false return means the deadline passed
     * with the condition still unmet. The timed form exists for
     * periodic background work (the metrics sampler); state machines
     * waiting on a condition alone should use wait().
     */
    template <typename Rep, typename Period, typename Pred>
    bool
    waitFor(MutexLock &lk,
            const std::chrono::duration<Rep, Period> &timeout,
            Pred pred)
    {
        std::unique_lock<std::mutex> native(lk.mu_->m_,
                                            std::adopt_lock);
        const bool satisfied =
            cv_.wait_for(native, timeout, std::move(pred));
        native.release();
        return satisfied;
    }

    /** Wake one waiter. Callers need not hold the mutex. */
    void notifyOne() { cv_.notify_one(); }

    /** Wake every waiter. Callers need not hold the mutex. */
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

namespace sync_detail {

/** Locks this thread currently holds, for violation reports. */
std::string heldLocksDescription();

} // namespace sync_detail

} // namespace acamar

#endif // ACAMAR_COMMON_SYNC_HH
