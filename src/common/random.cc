#include "common/random.hh"

#include <cmath>

#include "common/check.hh"

namespace acamar {
namespace {

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

uint64_t
splitmix64(uint64_t &x)
{
    uint64_t z = (x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}


Rng::Rng(uint64_t seed)
{
    for (auto &s : s_)
        s = splitmix64(seed);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    ACAMAR_CHECK(lo <= hi) << "bad uniformInt range";
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(next() % span);
}

double
Rng::normal()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1 = uniform();
    double u2 = uniform();
    while (u1 <= 1e-300) {
        u1 = uniform();
    }
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double sigma)
{
    return mean + sigma * normal();
}

int64_t
Rng::powerLaw(double alpha, int64_t cap)
{
    ACAMAR_CHECK(cap >= 1) << "powerLaw cap must be >= 1";
    // Inverse-CDF sampling of a continuous power law, clamped.
    const double u = uniform();
    const double x = std::pow(1.0 - u, -1.0 / (alpha - 1.0));
    const int64_t k = static_cast<int64_t>(x);
    return std::min<int64_t>(std::max<int64_t>(k, 1), cap);
}

void
Rng::shuffle(std::vector<int> &v)
{
    for (size_t i = v.size(); i > 1; --i) {
        const size_t j = static_cast<size_t>(uniformInt(0, i - 1));
        std::swap(v[i - 1], v[j]);
    }
}

} // namespace acamar
