#include "common/string_utils.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/logging.hh"

namespace acamar {

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
splitWhitespace(const std::string &s)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        size_t b = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        if (i > b)
            out.push_back(s.substr(b, i - b));
    }
    return out;
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    size_t b = 0;
    while (true) {
        size_t e = s.find(delim, b);
        if (e == std::string::npos) {
            out.push_back(s.substr(b));
            break;
        }
        out.push_back(s.substr(b, e - b));
        b = e + 1;
    }
    return out;
}

std::string
toLower(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

double
parseDouble(const std::string &s)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        ACAMAR_FATAL("not a number: '", s, "'");
    return v;
}

long long
parseInt(const std::string &s)
{
    char *end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        ACAMAR_FATAL("not an integer: '", s, "'");
    return v;
}

} // namespace acamar
