/**
 * @file
 * Lightweight statistics collection (gem5-stats-flavoured).
 *
 * Simulation units register named statistics into a StatGroup; runs
 * can then be dumped as text or queried programmatically by benches
 * and tests. Only the stat kinds this project needs are provided:
 * scalar counters, averages and distributions.
 */

#ifndef ACAMAR_COMMON_STATS_HH
#define ACAMAR_COMMON_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/sync.hh"

namespace acamar {

/** A monotonically-growing named counter. */
class ScalarStat
{
  public:
    ScalarStat() = default;

    /** Add to the counter. */
    void add(double v) { value_ += v; }

    /** Increment by one. */
    void inc() { value_ += 1.0; }

    /** Overwrite the value (for sampled gauges). */
    void set(double v) { value_ = v; }

    /** Current value. */
    double value() const { return value_; }

    /** Reset to zero. */
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Running mean/min/max over samples. */
class AverageStat
{
  public:
    /** Record one sample. */
    void sample(double v);

    /** Number of samples recorded. */
    uint64_t count() const { return count_; }

    /** Mean of samples, 0 when empty. */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Smallest sample, +inf when empty. */
    double min() const { return min_; }

    /** Largest sample, -inf when empty. */
    double max() const { return max_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Forget all samples. */
    void reset();

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-bucket histogram over [lo, hi). */
class DistStat
{
  public:
    DistStat() : DistStat(0.0, 1.0, 10) {}

    /** Create with the given range split into n equal buckets. */
    DistStat(double lo, double hi, int buckets);

    /** Record one sample; out-of-range samples land in under/over. */
    void sample(double v);

    /** Count in bucket i. */
    uint64_t bucket(int i) const { return buckets_.at(i); }

    /** Number of buckets. */
    int numBuckets() const { return static_cast<int>(buckets_.size()); }

    /** Samples below the range. */
    uint64_t underflows() const { return under_; }

    /** Samples at or above the range end. */
    uint64_t overflows() const { return over_; }

    /** Total recorded samples. */
    uint64_t count() const { return count_; }

    /** Forget all samples. */
    void reset();

  private:
    double lo_, hi_;
    std::vector<uint64_t> buckets_;
    uint64_t under_ = 0, over_ = 0, count_ = 0;
};

/**
 * A named collection of statistics. Units own a StatGroup and
 * register their stats once; dump() renders every registered stat.
 *
 * The registration directory is internally locked (leaf rank):
 * SimObject's base constructor publishes the group to StatRegistry
 * before the derived constructor registers its stats, so a
 * concurrent registry snapshot can iterate the directory while a
 * registration is still inserting. Stat *values* stay unlocked —
 * they are owned and mutated by one unit, and snapshots of a live
 * run read them racily by design (StatRegistry freezes at run end
 * for the deterministic snapshot).
 */
class StatGroup
{
  public:
    /** Create a group with a hierarchical name like "acamar.spmv". */
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a scalar under this group. Pointer must outlive it. */
    void addScalar(const std::string &name, ScalarStat *s,
                   const std::string &desc = "") ACAMAR_EXCLUDES(mu_);

    /** Register an average under this group. */
    void addAverage(const std::string &name, AverageStat *s,
                    const std::string &desc = "") ACAMAR_EXCLUDES(mu_);

    /** Register a distribution under this group. */
    void addDist(const std::string &name, DistStat *s,
                 const std::string &desc = "") ACAMAR_EXCLUDES(mu_);

    /** Look up a registered scalar, nullptr when absent. */
    const ScalarStat *scalar(const std::string &name) const
        ACAMAR_EXCLUDES(mu_);

    /** Look up a registered average, nullptr when absent. */
    const AverageStat *average(const std::string &name) const
        ACAMAR_EXCLUDES(mu_);

    /** Look up a registered distribution, nullptr when absent. */
    const DistStat *dist(const std::string &name) const
        ACAMAR_EXCLUDES(mu_);

    /** One registered stat, for snapshot consumers (obs/). */
    struct StatView {
        std::string name;           //!< stat name within the group
        std::string desc;           //!< registration description
        const ScalarStat *scalar = nullptr;
        const AverageStat *average = nullptr;
        const DistStat *dist = nullptr;
    };

    /** Every registered stat, sorted by name (deterministic). */
    std::vector<StatView> view() const ACAMAR_EXCLUDES(mu_);

    /**
     * Render "group.stat value # desc" lines. Ordering is the sorted
     * stat name and floats use a fixed shortest-round-trip format,
     * so two runs with equal stats dump byte-identical text.
     */
    void dump(std::ostream &os) const ACAMAR_EXCLUDES(mu_);

    /** Reset every registered stat. */
    void resetAll() ACAMAR_EXCLUDES(mu_);

    /** Group name. */
    const std::string &name() const { return name_; }

  private:
    struct Entry {
        std::string desc;
        ScalarStat *scalar = nullptr;
        AverageStat *average = nullptr;
        DistStat *dist = nullptr;
    };

    std::string name_;
    /** Leaf rank: legal under StatRegistry's rank-10 snapshot lock. */
    mutable Mutex mu_{LockRank::kLeaf, "stat-group"};
    std::map<std::string, Entry> entries_ ACAMAR_GUARDED_BY(mu_);
};

/**
 * Deterministic stat-value formatting shared by the text dump and
 * the JSON snapshot: integral values have no fraction, others print
 * in shortest round-trippable form, non-finite values as "nan"/"inf".
 */
std::string formatStatValue(double v);

} // namespace acamar

#endif // ACAMAR_COMMON_STATS_HH
