#include "common/stats.hh"

#include <algorithm>
#include <iomanip>

#include "common/check.hh"

namespace acamar {

void
AverageStat::sample(double v)
{
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

void
AverageStat::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

DistStat::DistStat(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), buckets_(static_cast<size_t>(buckets), 0)
{
    ACAMAR_CHECK(hi > lo && buckets > 0) << "bad DistStat range";
}

void
DistStat::sample(double v)
{
    ++count_;
    if (v < lo_) {
        ++under_;
    } else if (v >= hi_) {
        ++over_;
    } else {
        const double frac = (v - lo_) / (hi_ - lo_);
        auto idx = static_cast<size_t>(frac * buckets_.size());
        idx = std::min(idx, buckets_.size() - 1);
        ++buckets_[idx];
    }
}

void
DistStat::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    under_ = over_ = count_ = 0;
}

void
StatGroup::addScalar(const std::string &name, ScalarStat *s,
                     const std::string &desc)
{
    ACAMAR_CHECK(s) << "null scalar stat";
    Entry e;
    e.desc = desc;
    e.scalar = s;
    entries_[name] = e;
}

void
StatGroup::addAverage(const std::string &name, AverageStat *s,
                      const std::string &desc)
{
    ACAMAR_CHECK(s) << "null average stat";
    Entry e;
    e.desc = desc;
    e.average = s;
    entries_[name] = e;
}

const ScalarStat *
StatGroup::scalar(const std::string &name) const
{
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second.scalar;
}

const AverageStat *
StatGroup::average(const std::string &name) const
{
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second.average;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, e] : entries_) {
        os << name_ << '.' << name << ' ';
        if (e.scalar) {
            os << e.scalar->value();
        } else if (e.average) {
            os << e.average->mean() << " (n=" << e.average->count()
               << " min=" << e.average->min()
               << " max=" << e.average->max() << ')';
        }
        if (!e.desc.empty())
            os << " # " << e.desc;
        os << '\n';
    }
}

void
StatGroup::resetAll()
{
    for (auto &[name, e] : entries_) {
        if (e.scalar)
            e.scalar->reset();
        if (e.average)
            e.average->reset();
    }
}

} // namespace acamar
