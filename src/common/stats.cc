#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.hh"

namespace acamar {

void
AverageStat::sample(double v)
{
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

void
AverageStat::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

DistStat::DistStat(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), buckets_(static_cast<size_t>(buckets), 0)
{
    ACAMAR_CHECK(hi > lo && buckets > 0) << "bad DistStat range";
}

void
DistStat::sample(double v)
{
    ++count_;
    if (v < lo_) {
        ++under_;
    } else if (v >= hi_) {
        ++over_;
    } else {
        const double frac = (v - lo_) / (hi_ - lo_);
        auto idx = static_cast<size_t>(frac * buckets_.size());
        idx = std::min(idx, buckets_.size() - 1);
        ++buckets_[idx];
    }
}

void
DistStat::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    under_ = over_ = count_ = 0;
}

void
StatGroup::addScalar(const std::string &name, ScalarStat *s,
                     const std::string &desc)
{
    ACAMAR_CHECK(s) << "null scalar stat";
    Entry e;
    e.desc = desc;
    e.scalar = s;
    MutexLock lk(mu_);
    entries_[name] = e;
}

void
StatGroup::addAverage(const std::string &name, AverageStat *s,
                      const std::string &desc)
{
    ACAMAR_CHECK(s) << "null average stat";
    Entry e;
    e.desc = desc;
    e.average = s;
    MutexLock lk(mu_);
    entries_[name] = e;
}

void
StatGroup::addDist(const std::string &name, DistStat *s,
                   const std::string &desc)
{
    ACAMAR_CHECK(s) << "null dist stat";
    Entry e;
    e.desc = desc;
    e.dist = s;
    MutexLock lk(mu_);
    entries_[name] = e;
}

const ScalarStat *
StatGroup::scalar(const std::string &name) const
{
    MutexLock lk(mu_);
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second.scalar;
}

const AverageStat *
StatGroup::average(const std::string &name) const
{
    MutexLock lk(mu_);
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second.average;
}

const DistStat *
StatGroup::dist(const std::string &name) const
{
    MutexLock lk(mu_);
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second.dist;
}

std::vector<StatGroup::StatView>
StatGroup::view() const
{
    // std::map iteration is already name-sorted.
    MutexLock lk(mu_);
    std::vector<StatView> out;
    out.reserve(entries_.size());
    for (const auto &[name, e] : entries_) {
        StatView v;
        v.name = name;
        v.desc = e.desc;
        v.scalar = e.scalar;
        v.average = e.average;
        v.dist = e.dist;
        out.push_back(std::move(v));
    }
    return out;
}

std::string
formatStatValue(double v)
{
    if (std::isnan(v))
        return "nan";
    if (std::isinf(v))
        return v > 0 ? "inf" : "-inf";
    if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    for (const int prec : {15, 16, 17}) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(buf, "%lf", &back);
        if (back == v)
            break;
    }
    return buf;
}

void
StatGroup::dump(std::ostream &os) const
{
    MutexLock lk(mu_);
    for (const auto &[name, e] : entries_) {
        os << name_ << '.' << name << ' ';
        if (e.scalar) {
            os << formatStatValue(e.scalar->value());
        } else if (e.average) {
            os << formatStatValue(e.average->mean())
               << " (n=" << e.average->count()
               << " min=" << formatStatValue(e.average->min())
               << " max=" << formatStatValue(e.average->max()) << ')';
        } else if (e.dist) {
            os << "dist (n=" << e.dist->count()
               << " under=" << e.dist->underflows()
               << " over=" << e.dist->overflows() << " buckets=[";
            for (int i = 0; i < e.dist->numBuckets(); ++i)
                os << (i ? " " : "") << e.dist->bucket(i);
            os << "])";
        }
        if (!e.desc.empty())
            os << " # " << e.desc;
        os << '\n';
    }
}

void
StatGroup::resetAll()
{
    MutexLock lk(mu_);
    for (auto &[name, e] : entries_) {
        if (e.scalar)
            e.scalar->reset();
        if (e.average)
            e.average->reset();
        if (e.dist)
            e.dist->reset();
    }
}

} // namespace acamar
