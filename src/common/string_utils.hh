/**
 * @file
 * Small string helpers shared by the MatrixMarket reader and the
 * config parser.
 */

#ifndef ACAMAR_COMMON_STRING_UTILS_HH
#define ACAMAR_COMMON_STRING_UTILS_HH

#include <string>
#include <vector>

namespace acamar {

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &s);

/** Split on any whitespace run; empty tokens are dropped. */
std::vector<std::string> splitWhitespace(const std::string &s);

/** Split on a single delimiter character; empty tokens are kept. */
std::vector<std::string> split(const std::string &s, char delim);

/** ASCII lowercase copy. */
std::string toLower(const std::string &s);

/** True when s starts with the given prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Parse a string to double; fatal on malformed input. */
double parseDouble(const std::string &s);

/** Parse a string to int64; fatal on malformed input. */
long long parseInt(const std::string &s);

} // namespace acamar

#endif // ACAMAR_COMMON_STRING_UTILS_HH
