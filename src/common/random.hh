/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic parts of the library (matrix generators, workload
 * synthesis) draw from this xoshiro256** implementation so that runs
 * are reproducible across platforms and standard-library versions
 * (std::mt19937 distributions are not portable across vendors).
 */

#ifndef ACAMAR_COMMON_RANDOM_HH
#define ACAMAR_COMMON_RANDOM_HH

#include <cstdint>
#include <vector>

namespace acamar {

/**
 * One splitmix64 step: advances `state` and returns the next draw.
 * This is both the Rng seeding expander and the batch engine's
 * per-job stream deriver: starting from a root seed, job i seeds
 * its Rng from the i-th splitmix64 output, so a job's randomness
 * depends only on its submission index, never on which worker
 * thread ran it or in what order.
 */
uint64_t splitmix64(uint64_t &state);

/**
 * xoshiro256** 1.0 generator (Blackman & Vigna), with convenience
 * draws for the distributions the generators need.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal draw (Box-Muller, deterministic). */
    double normal();

    /** Normal draw with the given mean and standard deviation. */
    double normal(double mean, double sigma);

    /**
     * Geometric-ish power-law integer in [1, cap]: P(k) ~ k^-alpha.
     * Used by the circuit/graph matrix generators for degree draws.
     */
    int64_t powerLaw(double alpha, int64_t cap);

    /** Fisher-Yates shuffle of an index vector. */
    void shuffle(std::vector<int> &v);

    /** True with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace acamar

#endif // ACAMAR_COMMON_RANDOM_HH
