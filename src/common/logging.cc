#include "common/logging.hh"

#include <stdexcept>

namespace acamar {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::log(LogLevel lvl, const std::string &msg)
{
    if (lvl < threshold_)
        return;

    const char *tag = "info";
    switch (lvl) {
      case LogLevel::Debug: tag = "debug"; break;
      case LogLevel::Info:  tag = "info";  break;
      case LogLevel::Warn:  tag = "warn";  break;
      case LogLevel::Error: tag = "error"; break;
    }
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

namespace detail {

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    // Throwing (rather than exit()) keeps fatal paths testable; the
    // top-level binaries let it escape and terminate with an error.
    throw std::runtime_error(concat("fatal: ", msg, " (", file, ":",
                                    line, ")"));
}

} // namespace detail
} // namespace acamar
