/**
 * @file
 * Typed key/value configuration with command-line override parsing.
 *
 * Bench binaries accept "--key=value" overrides so sweeps can be
 * scripted without recompiling; the examples use it for scenario
 * parameters.
 */

#ifndef ACAMAR_COMMON_CONFIG_HH
#define ACAMAR_COMMON_CONFIG_HH

#include <map>
#include <string>

namespace acamar {

/** A flat string->string map with typed getters and defaults. */
class Config
{
  public:
    Config() = default;

    /** Parse "--key=value" arguments; unknown args are fatal. */
    static Config fromArgs(int argc, char **argv);

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);

    /** True when the key exists. */
    bool has(const std::string &key) const;

    /** String value or default. */
    std::string getString(const std::string &key,
                          const std::string &def) const;

    /** Integer value or default; fatal when malformed. */
    long long getInt(const std::string &key, long long def) const;

    /** Double value or default; fatal when malformed. */
    double getDouble(const std::string &key, double def) const;

    /** Bool value or default; accepts 0/1/true/false. */
    bool getBool(const std::string &key, bool def) const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace acamar

#endif // ACAMAR_COMMON_CONFIG_HH
