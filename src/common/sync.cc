#include "common/sync.hh"

#include <sstream>

#include "common/logging.hh"

namespace acamar {

namespace sync_detail {
namespace {

/**
 * The calling thread's held-lock stack. Fixed capacity: the deepest
 * legal nesting is bounded by the rank table (every acquisition
 * strictly increases the held rank), so 16 frames is generous.
 */
struct LockSet {
    static constexpr int kMaxDepth = 16;
    const Mutex *held[kMaxDepth];
    int depth = 0;
};

LockSet &
thisThreadLockSet()
{
    thread_local LockSet set;
    return set;
}

std::string
describe(const LockSet &set)
{
    std::ostringstream os;
    if (set.depth == 0) {
        os << "(no locks held)";
        return os.str();
    }
    for (int i = 0; i < set.depth; ++i) {
        if (i)
            os << ", ";
        os << '"' << set.held[i]->name() << "\" (rank "
           << static_cast<int>(set.held[i]->rank()) << ')';
    }
    return os.str();
}

/**
 * Enforce the global order before `mu` is acquired: every held lock
 * must rank strictly below it. Violations are library bugs, so they
 * panic (abort) rather than throw — a deadlock-shaped nesting must
 * never be allowed to proceed, even under ScopedCheckThrowMode.
 */
void
checkRankOnAcquire(const Mutex &mu)
{
    const LockSet &set = thisThreadLockSet();
    for (int i = 0; i < set.depth; ++i) {
        if (set.held[i]->rank() >= mu.rank()) {
            ACAMAR_PANIC(
                "lock-rank violation: acquiring \"", mu.name(),
                "\" (rank ", static_cast<int>(mu.rank()),
                ") while this thread holds ", describe(set),
                "; mutexes must be acquired in strictly increasing "
                "LockRank order (see common/sync.hh)");
        }
    }
}

void
pushHeld(const Mutex &mu)
{
    LockSet &set = thisThreadLockSet();
    if (set.depth >= LockSet::kMaxDepth) {
        ACAMAR_PANIC("lock nesting deeper than ", LockSet::kMaxDepth,
                     " while acquiring \"", mu.name(),
                     "\"; held: ", describe(set));
    }
    set.held[set.depth++] = &mu;
}

void
popHeld(const Mutex &mu)
{
    LockSet &set = thisThreadLockSet();
    // Scan from the top: releases are usually LIFO, but
    // ReleasableMutexLock and manual unlock() may release an inner
    // frame early.
    for (int i = set.depth - 1; i >= 0; --i) {
        if (set.held[i] == &mu) {
            for (int j = i; j + 1 < set.depth; ++j)
                set.held[j] = set.held[j + 1];
            --set.depth;
            return;
        }
    }
    ACAMAR_PANIC("unlock of \"", mu.name(),
                 "\" which this thread does not hold; held: ",
                 describe(set));
}

} // namespace

std::string
heldLocksDescription()
{
    return describe(thisThreadLockSet());
}

} // namespace sync_detail

void
Mutex::lock()
{
#if ACAMAR_SYNC_RANK_CHECKS
    sync_detail::checkRankOnAcquire(*this);
#endif
    m_.lock();
#if ACAMAR_SYNC_RANK_CHECKS
    sync_detail::pushHeld(*this);
#endif
}

void
Mutex::unlock()
{
#if ACAMAR_SYNC_RANK_CHECKS
    sync_detail::popHeld(*this);
#endif
    m_.unlock();
}

bool
Mutex::tryLock()
{
#if ACAMAR_SYNC_RANK_CHECKS
    sync_detail::checkRankOnAcquire(*this);
#endif
    if (!m_.try_lock())
        return false;
#if ACAMAR_SYNC_RANK_CHECKS
    sync_detail::pushHeld(*this);
#endif
    return true;
}

} // namespace acamar
