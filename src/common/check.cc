#include "common/check.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace acamar {
namespace check_detail {
namespace {

// Thread-local so a test's ScopedCheckThrowMode cannot leak into
// concurrently running code once the codebase goes multi-threaded.
thread_local CheckFailMode tls_fail_mode = CheckFailMode::Abort;

} // namespace

CheckFailMode
failMode()
{
    return tls_fail_mode;
}

CheckFailMode
setFailMode(CheckFailMode mode)
{
    const CheckFailMode prev = tls_fail_mode;
    tls_fail_mode = mode;
    return prev;
}

Failer::Failer(const char *file, int line, const char *expr)
    : file_(file), line_(line)
{
    os_ << "check failed: " << expr << " — ";
}

Failer::~Failer() noexcept(false)
{
    const std::string msg = os_.str();
    if (failMode() == CheckFailMode::Throw)
        throw CheckError(msg, file_, line_);
    Logger::instance().log(LogLevel::Error,
                           detail::concat(msg, " (", file_, ":",
                                          line_, ")"));
    std::abort();
}

} // namespace check_detail
} // namespace acamar
