#include "common/config.hh"

#include "common/logging.hh"
#include "common/string_utils.hh"

namespace acamar {

Config
Config::fromArgs(int argc, char **argv)
{
    Config cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (!startsWith(arg, "--"))
            ACAMAR_FATAL("unexpected argument '", arg,
                         "', expected --key=value");
        const size_t eq = arg.find('=');
        if (eq == std::string::npos)
            ACAMAR_FATAL("argument '", arg, "' is missing '=value'");
        cfg.set(arg.substr(2, eq - 2), arg.substr(eq + 1));
    }
    return cfg;
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

long long
Config::getInt(const std::string &key, long long def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : parseInt(it->second);
}

double
Config::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : parseDouble(it->second);
}

bool
Config::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string v = toLower(it->second);
    if (v == "1" || v == "true" || v == "yes")
        return true;
    if (v == "0" || v == "false" || v == "no")
        return false;
    ACAMAR_FATAL("bad boolean value '", it->second, "' for key '", key,
                 "'");
}

} // namespace acamar
