/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (bugs in this library), fatal() is for user errors that
 * make continuing impossible, warn()/inform() report conditions that
 * do not stop execution.
 */

#ifndef ACAMAR_COMMON_LOGGING_HH
#define ACAMAR_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace acamar {

/** Severity of a log message. */
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Minimal global logger. Messages below the threshold are dropped.
 * Output goes to stderr so bench tables on stdout stay clean.
 */
class Logger
{
  public:
    /** Access the process-wide logger instance. */
    static Logger &instance();

    /** Set the minimum level that will be printed. */
    void setThreshold(LogLevel lvl) { threshold_ = lvl; }

    /** Current minimum printed level. */
    LogLevel threshold() const { return threshold_; }

    /** Print one message at the given level. */
    void log(LogLevel lvl, const std::string &msg);

  private:
    Logger() = default;

    LogLevel threshold_ = LogLevel::Info;
};

namespace detail {

/** Concatenate a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

} // namespace detail

/** Report an informational message. */
template <typename... Args>
void
inform(Args &&...args)
{
    Logger::instance().log(LogLevel::Info,
                           detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    Logger::instance().log(LogLevel::Warn,
                           detail::concat(std::forward<Args>(args)...));
}

/**
 * Abort because an internal invariant was violated (a library bug).
 * Never returns.
 */
#define ACAMAR_PANIC(...)                                                  \
    ::acamar::detail::panicImpl(__FILE__, __LINE__,                        \
                                ::acamar::detail::concat(__VA_ARGS__))

/**
 * Exit because the caller supplied input the library cannot work with.
 * Never returns.
 */
#define ACAMAR_FATAL(...)                                                  \
    ::acamar::detail::fatalImpl(__FILE__, __LINE__,                        \
                                ::acamar::detail::concat(__VA_ARGS__))

// Invariant checks live in common/check.hh (ACAMAR_CHECK and
// friends); this header only carries message reporting and the two
// unconditional terminators above.

} // namespace acamar

#endif // ACAMAR_COMMON_LOGGING_HH
