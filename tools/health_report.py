#!/usr/bin/env python3
"""Summarize (or validate) the run-health artifacts of an Acamar run.

Consumes the live-metrics JSON exposition written by
--metrics-out=<file>.json (schema acamar-metrics-v1) and, optionally,
the JSONL trace written by --trace=<path>, and prints a run-health
report: batch job outcomes, solver throughput, health anomaly
counters, and — when a trace is given — the per-job anomaly table
keyed by correlation ID.

    python3 tools/health_report.py metrics.json
    python3 tools/health_report.py metrics.json --trace out.jsonl

CI runs the schema gate instead of the report:

    python3 tools/health_report.py metrics.json --validate

Exit status 0 = report printed / validation passed, 1 = validation
failed or no usable input, 2 = usage / IO error.
"""

import argparse
import json
import sys
from collections import Counter, defaultdict

SCHEMA = "acamar-metrics-v1"

# Every sampler pass refreshes the RSS gauge, and the final pass on
# teardown writes the exposition, so a well-formed run always exports
# at least this gauge.
REQUIRED_GAUGES = ("acamar_process_rss_bytes",)

HEALTH_COUNTERS = (
    "acamar_health_stall_total",
    "acamar_health_divergence_total",
    "acamar_health_nan_precursor_total",
    "acamar_health_timeout_total",
)


def load_metrics(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def validate_metrics(doc, errors):
    """Append schema violations to `errors`; empty list = valid."""
    if not isinstance(doc, dict):
        errors.append("top level is not a JSON object")
        return
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema is {doc.get('schema')!r}, "
                      f"expected {SCHEMA!r}")
    for family in ("counters", "gauges", "histograms"):
        section = doc.get(family)
        if not isinstance(section, dict):
            errors.append(f"missing or non-object section "
                          f"{family!r}")
            continue
        for name, metric in section.items():
            if not isinstance(metric, dict):
                errors.append(f"{family}/{name}: not an object")
                continue
            if family == "histograms":
                for key in ("count", "min", "max", "mean",
                            "p50", "p90", "p99"):
                    if not isinstance(metric.get(key), (int, float)):
                        errors.append(f"{family}/{name}: missing "
                                      f"numeric {key!r}")
            elif not isinstance(metric.get("value"), (int, float)):
                errors.append(f"{family}/{name}: missing numeric "
                              "'value'")
    if isinstance(doc.get("gauges"), dict):
        for name in REQUIRED_GAUGES:
            if name not in doc["gauges"]:
                errors.append(f"required gauge {name!r} absent — "
                              "did the sampler ever run?")


def metric_value(doc, family, name, default=0):
    metric = doc.get(family, {}).get(name)
    if isinstance(metric, dict):
        value = metric.get("value")
        if isinstance(value, (int, float)):
            return value
    return default


def load_trace(path):
    events, bad = [], 0
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError:
                bad += 1
                continue
            if isinstance(ev, dict) and "type" in ev:
                events.append(ev)
            else:
                bad += 1
    return events, bad


def report_metrics(doc, out):
    completed = metric_value(doc, "counters",
                             "acamar_batch_jobs_completed_total")
    failed = metric_value(doc, "counters",
                          "acamar_batch_jobs_failed_total")
    timed_out = metric_value(doc, "counters",
                             "acamar_batch_jobs_timed_out_total")
    if completed or failed or timed_out:
        out.write(f"batch jobs: {completed:.0f} completed, "
                  f"{failed:.0f} failed, {timed_out:.0f} timed out\n")

    iters = metric_value(doc, "counters",
                         "acamar_solver_iterations_total")
    ips = metric_value(doc, "gauges",
                       "acamar_solver_iterations_per_sec")
    if iters:
        out.write(f"solver: {iters:.0f} iterations total, last "
                  f"sampled throughput {ips:.0f} it/s\n")

    rss = metric_value(doc, "gauges", "acamar_process_rss_bytes")
    if rss:
        out.write(f"process: rss {rss / (1 << 20):.1f} MiB\n")

    flagged = [(name, metric_value(doc, "counters", name))
               for name in HEALTH_COUNTERS]
    flagged = [(name, n) for name, n in flagged if n]
    out.write("health anomalies:")
    if flagged:
        out.write("\n")
        for name, n in flagged:
            kind = name[len("acamar_health_"):-len("_total")]
            out.write(f"  {kind:<14} {n:.0f}\n")
    else:
        out.write(" none\n")


def report_trace(events, out):
    jobs = defaultdict(Counter)
    for ev in events:
        if ev.get("type") != "health":
            continue
        key = (ev.get("run_id", "-"), ev.get("span_id", "-"))
        jobs[key][ev.get("kind", "?")] += 1
    if not jobs:
        out.write("per-job anomalies: none in trace\n")
        return
    out.write("per-job anomalies:\n")
    out.write(f"  {'run_id':<17} {'span':>4}  anomalies\n")
    for (run_id, span_id), kinds in sorted(jobs.items()):
        detail = ", ".join(f"{k}x{n}" if n > 1 else k
                           for k, n in sorted(kinds.items()))
        out.write(f"  {run_id:<17} {span_id:>4}  {detail}\n")


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("metrics",
                    help="metrics JSON from --metrics-out=<file>.json")
    ap.add_argument("--trace", metavar="JSONL",
                    help="JSONL trace from --trace=<path> for the "
                         "per-job anomaly table")
    ap.add_argument("--validate", action="store_true",
                    help="check the metrics file against the "
                         f"{SCHEMA} schema and exit (CI gate)")
    args = ap.parse_args(argv)

    try:
        doc = load_metrics(args.metrics)
    except (OSError, json.JSONDecodeError) as e:
        print(f"health_report: {args.metrics}: {e}", file=sys.stderr)
        return 2

    errors = []
    validate_metrics(doc, errors)
    if args.validate:
        if errors:
            for err in errors:
                print(f"health_report: {args.metrics}: {err}",
                      file=sys.stderr)
            return 1
        counters = len(doc.get("counters", {}))
        gauges = len(doc.get("gauges", {}))
        hists = len(doc.get("histograms", {}))
        print(f"{args.metrics}: valid {SCHEMA} ({counters} counters, "
              f"{gauges} gauges, {hists} histograms)")
        return 0

    if errors:
        # The human report tolerates partial files (e.g. a run killed
        # mid-write) but says so up front.
        print(f"health_report: warning: {len(errors)} schema "
              f"issue(s) in {args.metrics}; report may be partial",
              file=sys.stderr)

    print(f"{args.metrics}:")
    report_metrics(doc, sys.stdout)

    if args.trace:
        try:
            events, bad = load_trace(args.trace)
        except OSError as e:
            print(f"health_report: {args.trace}: {e}",
                  file=sys.stderr)
            return 2
        print(f"\n{args.trace}: {len(events)} events"
              + (f" ({bad} malformed lines skipped)" if bad else ""))
        report_trace(events, sys.stdout)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:
        sys.exit(0)
