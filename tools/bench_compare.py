#!/usr/bin/env python3
"""Validate, merge and diff Acamar perf records (acamar-perf-v1).

Every fig/table/ablation bench emits one record via --perf-json=<p>;
tools/perf_smoke.sh merges the smoke set into one file. This tool
closes the loop: it checks records against the schema, merges per-
bench files into a baseline set, and diffs a current run against a
checked-in baseline, failing on regressions.

    python3 tools/bench_compare.py validate out/*.json
    python3 tools/bench_compare.py merge out/*.json --out set.json
    python3 tools/bench_compare.py compare BENCH_baseline.json \\
        current.json [--threshold 15] [--report-only]

compare matches records by (bench, dim, jobs). A record regresses
when wall_seconds grows or throughput.per_second shrinks by more
than --threshold percent (default 15). Digest changes (the zone
tree gained or lost paths) are reported but never fail the run:
instrumenting new code is an expected, reviewable event.

Records written under --util-report additionally carry a "util"
object (the kernel/pool core of acamar-util-v1: per-kernel bytes,
flops and achieved GB/s plus the pool busy/idle split). The field is
optional — validate checks it only when present, and compare prints
an informational achieved-bandwidth diff when both sides carry it,
skipping (with a note) baselines recorded before the schema grew the
field. Utilization never gates: it explains a wall-clock regression,
it does not define one.

bench/spmm_kernels emits a second optional section, "spmm": the
block width, the per-kernel effective GB/s table and the best fused
amortization vs k independent SpMVs. Handled exactly like "util":
validate checks it only when present, compare prints an
informational amortization diff (flagging runs below the 1.5x
target) when both sides carry it and skips pre-SpMM baselines with
a note. Amortization never gates either.

compare --update-baseline accepts the current run as the new
reference: after printing the usual report it rewrites the baseline
file (e.g. BENCH_baseline.json) as a set whose records come from the
merged current run, keeping any baseline record the current run did
not re-measure. Implies --report-only (you are accepting the new
numbers, not gating on the old ones).

Exit status: 0 = ok, 1 = regression (or records missing from the
current run), 2 = usage/validation error. --report-only prints the
same report but always exits 0/2 — CI uses it while a shared runner
makes wall-clock thresholds too noisy to gate on.
"""

import argparse
import json
import sys

SCHEMA = "acamar-perf-v1"
SET_SCHEMA = "acamar-perf-set-v1"

# Required fields and their types; "throughput" and "profile" are
# nested objects checked separately.
_TOP_FIELDS = {
    "schema": str,
    "bench": str,
    "dim": int,
    "jobs": int,
    "git_sha": str,
    "wall_seconds": (int, float),
    "throughput": dict,
    "profile": dict,
}
_THROUGHPUT_FIELDS = {
    "unit": str,
    "count": (int, float),
    "per_second": (int, float),
}
_PROFILE_FIELDS = {
    "digest": str,
    "zones": list,
    "counters": dict,
    "histograms": dict,
    "timeline_dropped": int,
}
_ZONE_FIELDS = {
    "path": str,
    "calls": int,
    "total_ns": int,
    "self_ns": int,
    "p50_ns": int,
    "p90_ns": int,
    "p99_ns": int,
}
# The optional "util" object (--util-report runs only). peak_gbps is
# itself optional within it: a run may open a ledger window without a
# usable calibration.
_UTIL_KERNEL_FIELDS = {
    "zone": str,
    "calls": int,
    "bytes": int,
    "flops": int,
    "total_ns": int,
    "achieved_gbps": (int, float),
}
_UTIL_POOL_FIELDS = {
    "busy_ns": int,
    "idle_ns": int,
    "tasks": int,
    "steals": int,
}
# The optional "spmm" object (bench/spmm_kernels only): block width,
# best fused amortization vs k independent SpMVs, per-kernel rows.
_SPMM_FIELDS = {
    "k": int,
    "scalar_bytes": (int, float),
    "amortization": (int, float),
    "kernels": list,
}
_SPMM_KERNEL_FIELDS = {
    "kernel": str,
    "us_per_op": (int, float),
    "eff_gbps": (int, float),
    "amortization": (int, float),
    "identical": bool,
}

# The fused kernels' report-only target: SpMM at k=8 should reach at
# least this multiple of 8 independent SpMVs' effective bandwidth on
# a bandwidth-bound workload.
SPMM_AMORTIZATION_TARGET = 1.5


def _check_fields(obj, fields, where, errors):
    for name, ty in fields.items():
        if name not in obj:
            errors.append(f"{where}: missing '{name}'")
        elif not isinstance(obj[name], ty):
            errors.append(f"{where}: '{name}' has type "
                          f"{type(obj[name]).__name__}")


def validate_record(rec, where):
    """Return a list of schema violations (empty = valid)."""
    errors = []
    if not isinstance(rec, dict):
        return [f"{where}: record is not an object"]
    _check_fields(rec, _TOP_FIELDS, where, errors)
    if rec.get("schema") not in (None, SCHEMA):
        errors.append(f"{where}: schema '{rec.get('schema')}' != "
                      f"'{SCHEMA}'")
    if isinstance(rec.get("throughput"), dict):
        _check_fields(rec["throughput"], _THROUGHPUT_FIELDS,
                      f"{where}.throughput", errors)
    if isinstance(rec.get("profile"), dict):
        _check_fields(rec["profile"], _PROFILE_FIELDS,
                      f"{where}.profile", errors)
        for i, zone in enumerate(rec["profile"].get("zones") or []):
            if not isinstance(zone, dict):
                errors.append(f"{where}.profile.zones[{i}]: "
                              "not an object")
                continue
            _check_fields(zone, _ZONE_FIELDS,
                          f"{where}.profile.zones[{i}]", errors)
    if "util" in rec:
        _validate_util(rec["util"], f"{where}.util", errors)
    if "spmm" in rec:
        _validate_spmm(rec["spmm"], f"{where}.spmm", errors)
    return errors


def _validate_util(util, where, errors):
    """Check the optional utilization object (present only when the
    run had a WorkLedger window open)."""
    if not isinstance(util, dict):
        errors.append(f"{where}: not an object")
        return
    if "peak_gbps" in util and \
            not isinstance(util["peak_gbps"], (int, float)):
        errors.append(f"{where}: 'peak_gbps' has type "
                      f"{type(util['peak_gbps']).__name__}")
    kernels = util.get("kernels")
    if not isinstance(kernels, list):
        errors.append(f"{where}: missing 'kernels' list")
    else:
        for i, k in enumerate(kernels):
            if not isinstance(k, dict):
                errors.append(f"{where}.kernels[{i}]: not an object")
                continue
            _check_fields(k, _UTIL_KERNEL_FIELDS,
                          f"{where}.kernels[{i}]", errors)
    pool = util.get("pool")
    if not isinstance(pool, dict):
        errors.append(f"{where}: missing 'pool' object")
    else:
        _check_fields(pool, _UTIL_POOL_FIELDS, f"{where}.pool",
                      errors)


def _validate_spmm(spmm, where, errors):
    """Check the optional SpMM amortization object (present only on
    bench/spmm_kernels records)."""
    if not isinstance(spmm, dict):
        errors.append(f"{where}: not an object")
        return
    _check_fields(spmm, _SPMM_FIELDS, where, errors)
    for i, k in enumerate(spmm.get("kernels") or []):
        if not isinstance(k, dict):
            errors.append(f"{where}.kernels[{i}]: not an object")
            continue
        _check_fields(k, _SPMM_KERNEL_FIELDS,
                      f"{where}.kernels[{i}]", errors)


def load_records(path):
    """Load a record file or a set file into a list of records."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, dict) and data.get("schema") == SET_SCHEMA:
        records = data.get("records")
        if not isinstance(records, list):
            raise ValueError(f"{path}: set file has no record list")
        return records
    return [data]


def key_of(rec):
    return (rec.get("bench"), rec.get("dim"), rec.get("jobs"))


def fmt_key(key):
    bench, dim, jobs = key
    return f"{bench} (dim={dim}, jobs={jobs})"


def cmd_validate(args):
    n_bad = 0
    for path in args.files:
        try:
            records = load_records(path)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"bench_compare: {path}: {e}", file=sys.stderr)
            n_bad += 1
            continue
        for rec in records:
            where = f"{path}:{rec.get('bench', '?')}"
            errors = validate_record(rec, where)
            for err in errors:
                print(f"bench_compare: {err}", file=sys.stderr)
            n_bad += bool(errors)
    if n_bad:
        return 2
    print(f"bench_compare: {len(args.files)} file(s) valid "
          f"({SCHEMA})")
    return 0


def cmd_merge(args):
    by_key = {}
    for path in args.files:
        try:
            records = load_records(path)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"bench_compare: {path}: {e}", file=sys.stderr)
            return 2
        for rec in records:
            errors = validate_record(rec, path)
            if errors:
                for err in errors:
                    print(f"bench_compare: {err}", file=sys.stderr)
                return 2
            by_key[key_of(rec)] = rec
    merged = {
        "schema": SET_SCHEMA,
        "records": [by_key[k] for k in sorted(by_key)],
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"bench_compare: merged {len(by_key)} record(s) into "
          f"{args.out}")
    return 0


def pct_change(old, new):
    if old == 0:
        return 0.0
    return 100.0 * (new - old) / old


def profile_digest(rec):
    """The record's zone-tree digest, or None when the run was not
    profiled: no digest at all, or an empty zone tree (whose digest
    is just the hash seed and would spuriously "match" or "differ"
    against a profiled run)."""
    prof = rec.get("profile")
    if not isinstance(prof, dict):
        return None
    digest = prof.get("digest")
    if not digest or not prof.get("zones"):
        return None
    return digest


def util_gbps(rec):
    """Aggregate achieved GB/s across the record's util kernels, or
    None when the record has no usable util object (pre-util
    baselines, runs without --util-report)."""
    util = rec.get("util")
    if not isinstance(util, dict):
        return None
    kernels = util.get("kernels")
    if not isinstance(kernels, list) or not kernels:
        return None
    total_bytes = total_ns = 0
    for k in kernels:
        if not isinstance(k, dict):
            return None
        total_bytes += k.get("bytes", 0)
        total_ns += k.get("total_ns", 0)
    if total_ns <= 0:
        return None
    return total_bytes / total_ns  # bytes/ns == GB/s


def spmm_amortization(rec):
    """The record's best fused-SpMM amortization, or None when the
    record has no usable spmm object (pre-SpMM baselines, benches
    other than spmm_kernels)."""
    spmm = rec.get("spmm")
    if not isinstance(spmm, dict):
        return None
    amort = spmm.get("amortization")
    if not isinstance(amort, (int, float)):
        return None
    return amort


def cmd_compare(args):
    try:
        base = {key_of(r): r for r in load_records(args.baseline)}
        cur = {key_of(r): r for r in load_records(args.current)}
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    if args.update_baseline:
        # Gate before the report: a schema-invalid current run must
        # never become the reference (and would crash the field
        # accesses below anyway).
        errors = []
        for key, rec in sorted(cur.items()):
            errors += validate_record(rec, fmt_key(key))
        if errors:
            for err in errors:
                print(f"bench_compare: {err}", file=sys.stderr)
            print("bench_compare: current run is not schema-valid; "
                  "baseline left untouched", file=sys.stderr)
            return 2

    regressions, missing = [], []
    digest_changes, digest_skipped = [], []
    util_diffs, util_skipped = [], []
    spmm_diffs, spmm_skipped = [], []
    for key in sorted(base):
        if key not in cur:
            missing.append(key)
            continue
        b, c = base[key], cur[key]
        d_wall = pct_change(b["wall_seconds"], c["wall_seconds"])
        d_tput = pct_change(b["throughput"]["per_second"],
                            c["throughput"]["per_second"])
        worst = max(d_wall, -d_tput)
        status = "ok"
        if worst > args.threshold:
            status = "REGRESSION"
            regressions.append(key)
        print(f"{fmt_key(key):<44} wall {d_wall:+7.1f}%  "
              f"throughput {d_tput:+7.1f}%  {status}")
        b_digest, c_digest = profile_digest(b), profile_digest(c)
        if b_digest is None or c_digest is None:
            digest_skipped.append(key)
        elif b_digest != c_digest:
            digest_changes.append(key)
        b_gbps, c_gbps = util_gbps(b), util_gbps(c)
        if b_gbps is None or c_gbps is None:
            if b_gbps is not None or c_gbps is not None:
                util_skipped.append(key)
        else:
            util_diffs.append((key, b_gbps, c_gbps))
        b_amort, c_amort = spmm_amortization(b), spmm_amortization(c)
        if b_amort is None or c_amort is None:
            if b_amort is not None or c_amort is not None:
                spmm_skipped.append(key)
        else:
            spmm_diffs.append((key, b_amort, c_amort))
    for key in sorted(set(cur) - set(base)):
        print(f"{fmt_key(key):<44} new (not in baseline)")

    if digest_changes:
        print(f"\nzone-tree digest changed for "
              f"{len(digest_changes)} bench(es) — instrumentation "
              "differs from baseline (informational):")
        for key in digest_changes:
            print(f"  {fmt_key(key)}")
    if digest_skipped:
        print(f"\nzone-tree digest not comparable for "
              f"{len(digest_skipped)} bench(es) — unprofiled on at "
              "least one side, skipped (informational):")
        for key in digest_skipped:
            print(f"  {fmt_key(key)}")
    if util_diffs:
        print(f"\nachieved bandwidth ({len(util_diffs)} bench(es), "
              "informational):")
        for key, b_gbps, c_gbps in util_diffs:
            print(f"  {fmt_key(key):<42} {b_gbps:7.2f} -> "
                  f"{c_gbps:7.2f} GB/s "
                  f"({pct_change(b_gbps, c_gbps):+.1f}%)")
    if util_skipped:
        print(f"\nutilization not comparable for "
              f"{len(util_skipped)} bench(es) — one side predates "
              "util attribution or ran without --util-report, "
              "skipped (informational):")
        for key in util_skipped:
            print(f"  {fmt_key(key)}")
    if spmm_diffs:
        print(f"\nSpMM amortization vs k independent SpMVs "
              f"({len(spmm_diffs)} bench(es), informational, "
              f"target >= {SPMM_AMORTIZATION_TARGET:.1f}x on "
              "bandwidth-bound workloads):")
        for key, b_amort, c_amort in spmm_diffs:
            below = (" (below target)"
                     if c_amort < SPMM_AMORTIZATION_TARGET else "")
            print(f"  {fmt_key(key):<42} {b_amort:5.2f}x -> "
                  f"{c_amort:5.2f}x{below}")
    if spmm_skipped:
        print(f"\nSpMM amortization not comparable for "
              f"{len(spmm_skipped)} bench(es) — one side predates "
              "the fused-SpMM kernels, skipped (informational):")
        for key in spmm_skipped:
            print(f"  {fmt_key(key)}")
    if missing:
        print(f"\n{len(missing)} baseline record(s) missing from "
              "the current run:")
        for key in missing:
            print(f"  {fmt_key(key)}")

    failed = bool(regressions or missing)
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0f}%")
    if failed and (args.report_only or args.update_baseline):
        print("(report-only mode: not failing the run)")
    elif not failed:
        print(f"\nno regressions beyond {args.threshold:.0f}% "
              f"across {len(base)} baseline record(s)")

    if args.update_baseline:
        # Current records win; baseline records the current run did
        # not re-measure survive, so a partial smoke run cannot
        # silently shrink baseline coverage.
        merged = dict(base)
        merged.update(cur)
        doc = {
            "schema": SET_SCHEMA,
            "records": [merged[k] for k in sorted(merged)],
        }
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        carried = len(merged) - len(cur)
        print(f"\nbaseline {args.baseline} updated: "
              f"{len(cur)} record(s) from the current run"
              + (f", {carried} carried over" if carried else ""))
        return 0

    return 1 if failed and not args.report_only else 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    ap_val = sub.add_parser("validate",
                            help="check records against the schema")
    ap_val.add_argument("files", nargs="+")
    ap_val.set_defaults(func=cmd_validate)

    ap_merge = sub.add_parser("merge",
                              help="merge records into one set file")
    ap_merge.add_argument("files", nargs="+")
    ap_merge.add_argument("--out", required=True)
    ap_merge.set_defaults(func=cmd_merge)

    ap_cmp = sub.add_parser("compare",
                            help="diff a run against a baseline")
    ap_cmp.add_argument("baseline")
    ap_cmp.add_argument("current")
    ap_cmp.add_argument("--threshold", type=float, default=15.0,
                        help="regression threshold in percent "
                             "(default 15)")
    ap_cmp.add_argument("--report-only", action="store_true",
                        help="print the report but do not fail")
    ap_cmp.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline file from the "
                             "current run (implies --report-only)")
    ap_cmp.set_defaults(func=cmd_compare)

    args = ap.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
