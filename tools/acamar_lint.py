#!/usr/bin/env python3
"""Repo-specific lint rules for Acamar.

Generic tools (clang-tidy, compiler warnings) cannot see this
project's conventions; these rules can. Runs as the `lint` ctest and
standalone:

    python3 tools/acamar_lint.py [--root /path/to/repo] [--list-rules]

Exit status 0 = clean, 1 = findings, 2 = usage error. Findings print
as `path:line: [rule] message` so editors can jump to them.

Suppress a single line with a trailing `// lint-ok: <rule>` comment.
"""

import argparse
import re
import sys
from pathlib import Path

CXX_GLOBS = ("src/**/*.cc", "src/**/*.hh")
ALL_CODE_GLOBS = CXX_GLOBS + (
    "tests/**/*.cc",
    "bench/**/*.cc",
    "bench/**/*.hh",
    "examples/**/*.cc",
)

# Integer-ish type names whose initialization from floating-point
# expressions must be spelled out (rule: narrowing).
INT_TYPES = (
    r"(?:u?int(?:8|16|32|64)_t|int|long|size_t|unsigned|Cycles|Tick)"
)
# Tokens that mark an explicit, reviewed float->int conversion.
EXPLICIT_CONV = re.compile(
    r"static_cast<|std::l?lround\b|std::ceil\b|std::floor\b|"
    r"std::round\b|std::trunc\b"
)
FLOATISH = re.compile(r"\d\.\d|\d\.e[+-]?\d|\de[+-]\d|\.0\b|\bdouble\b")


def strip_comments_and_strings(line, state):
    """Blank out comments and literals, preserving column positions.

    `state` is True while inside a /* block comment */ spanning lines.
    Returns (cleaned_line, new_state).
    """
    out = []
    i, n = 0, len(line)
    in_str = in_chr = False
    while i < n:
        c = line[i]
        if state:  # inside a block comment
            if line.startswith("*/", i):
                state = False
                out.append("  ")
                i += 2
            else:
                out.append(" ")
                i += 1
            continue
        if in_str:
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            if c == '"':
                in_str = False
                out.append('"')
            else:
                out.append(" ")
            i += 1
            continue
        if in_chr:
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            if c == "'":
                in_chr = False
                out.append("'")
            else:
                out.append(" ")
            i += 1
            continue
        if line.startswith("//", i):
            out.append(" " * (n - i))
            break
        if line.startswith("/*", i):
            state = True
            out.append("  ")
            i += 2
            continue
        if c == '"':
            in_str = True
            out.append('"')
            i += 1
            continue
        if c == "'":
            # skip digit separators like 1'000'000
            if i > 0 and line[i - 1].isdigit() and i + 1 < n and \
                    line[i + 1].isdigit():
                out.append("'")
                i += 1
                continue
            in_chr = True
            out.append("'")
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out), state


class File:
    def __init__(self, path, root):
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.raw_lines = path.read_text(errors="replace").splitlines()
        self.code_lines = []
        state = False
        for line in self.raw_lines:
            cleaned, state = strip_comments_and_strings(line, state)
            self.code_lines.append(cleaned)

    def suppressed(self, lineno, rule):
        raw = self.raw_lines[lineno - 1]
        return f"lint-ok: {rule}" in raw


class Finding:
    def __init__(self, rel, lineno, rule, msg):
        self.rel, self.lineno, self.rule, self.msg = rel, lineno, rule, msg

    def __str__(self):
        return f"{self.rel}:{self.lineno}: [{self.rule}] {self.msg}"


RULES = {}


def rule(name, doc):
    def deco(fn):
        RULES[name] = (fn, doc)
        return fn
    return deco


@rule("raw-new-delete",
      "library code manages memory with containers and smart "
      "pointers, never raw new/delete")
def raw_new_delete(files):
    pat_new = re.compile(r"\bnew\b(?!\s*\()")
    pat_del = re.compile(r"\bdelete\b(?!\s*\[?\]?\s*;?\s*$)|\bdelete\b")
    for f in files:
        if not f.rel.startswith("src/"):
            continue
        for no, line in enumerate(f.code_lines, 1):
            # `= delete;` (deleted member functions) is idiomatic,
            # including when the `delete;` wrapped onto its own line.
            stripped = re.sub(r"=\s*delete\s*;", "", line)
            if re.fullmatch(r"\s*delete\s*;?\s*", stripped) and \
                    no > 1 and f.code_lines[no - 2].rstrip() \
                    .endswith("="):
                continue
            if pat_new.search(line):
                yield Finding(f.rel, no, "raw-new-delete",
                              "raw `new`: use std::make_unique / "
                              "containers")
            elif pat_del.search(stripped):
                yield Finding(f.rel, no, "raw-new-delete",
                              "raw `delete`: ownership belongs in "
                              "RAII types")


@rule("std-rand",
      "all randomness must flow through common/random.hh so runs "
      "stay reproducible")
def std_rand(files):
    pat = re.compile(r"\bstd::rand\b|\bsrand\s*\(|(?<![\w.:])rand\s*\(")
    for f in files:
        for no, line in enumerate(f.code_lines, 1):
            if pat.search(line):
                yield Finding(f.rel, no, "std-rand",
                              "use acamar::Rng (common/random.hh), "
                              "not the C PRNG")


@rule("legacy-assert",
      "ACAMAR_ASSERT was replaced by the contract macros in "
      "common/check.hh")
def legacy_assert(files):
    for f in files:
        for no, line in enumerate(f.code_lines, 1):
            if "ACAMAR_ASSERT" in line:
                yield Finding(f.rel, no, "legacy-assert",
                              "use ACAMAR_CHECK / ACAMAR_DCHECK from "
                              "common/check.hh")


@rule("narrowing",
      "in src/fpga and src/metrics, double->integer conversions must "
      "be explicit (static_cast / llround / ceil / floor)")
def narrowing(files):
    decl = re.compile(
        rf"(?:^|[;{{(]|\bconst\s+)\s*(?:const\s+)?{INT_TYPES}\s+"
        rf"\w+\s*=\s*(?P<rhs>[^;]*)")
    for f in files:
        if not (f.rel.startswith("src/fpga/") or
                f.rel.startswith("src/metrics/")):
            continue
        for no, line in enumerate(f.code_lines, 1):
            m = decl.search(line)
            if not m:
                continue
            rhs = m.group("rhs")
            if FLOATISH.search(rhs) and not EXPLICIT_CONV.search(rhs):
                yield Finding(
                    f.rel, no, "narrowing",
                    "integer initialized from a floating expression "
                    "without an explicit conversion")


@rule("c-int-cast",
      "C-style integer casts hide narrowing in the resource/timing "
      "models; spell them static_cast")
def c_int_cast(files):
    pat = re.compile(
        rf"\(\s*{INT_TYPES}\s*\)\s*[\w(]")
    for f in files:
        if not (f.rel.startswith("src/fpga/") or
                f.rel.startswith("src/metrics/")):
            continue
        for no, line in enumerate(f.code_lines, 1):
            if pat.search(line):
                yield Finding(f.rel, no, "c-int-cast",
                              "use static_cast<> instead of a "
                              "C-style cast")


@rule("solver-convergence",
      "every solver's solve() must route stopping decisions through "
      "ConvergenceMonitor (solvers/convergence.hh), not hand-rolled "
      "tolerance checks")
def solver_convergence(files):
    tol = re.compile(r"criteria_?\s*\.\s*tolerance")
    for f in files:
        if not f.rel.startswith("src/solvers/"):
            continue
        if f.rel.endswith("convergence.cc") or \
                f.rel.endswith("convergence.hh"):
            continue
        # solver.cc holds the base-class convenience overload, which
        # only delegates to the workspace-taking solve(); the monitor
        # lives in each concrete implementation.
        if f.rel.endswith("solvers/solver.cc"):
            continue
        text = "\n".join(f.code_lines)
        defines_solve = re.search(r"::\s*solve\s*\(", text)
        if f.rel.endswith(".cc") and defines_solve and \
                "ConvergenceMonitor" not in text:
            yield Finding(f.rel, 1, "solver-convergence",
                          "solve() defined without a "
                          "ConvergenceMonitor")
        for no, line in enumerate(f.code_lines, 1):
            if tol.search(line):
                yield Finding(f.rel, no, "solver-convergence",
                              "hand-rolled tolerance check: ask "
                              "ConvergenceMonitor::meetsTolerance()")


@rule("hot-loop-alloc",
      "solver and sparse-kernel regions between `// acamar: hot-loop`"
      " and `// acamar: hot-loop-end` markers must not allocate: no "
      "resize()/push_back()/emplace_back()/assign()/reserve()/"
      "insert() and no std::vector / DenseBlock construction inside "
      "the iteration loop (use SolverWorkspace slots — scalar or "
      "block pools — or fixed std::array scratch sized before the "
      "loop)")
def hot_loop_alloc(files):
    alloc = re.compile(
        r"\.\s*(resize|push_back|emplace_back|assign|reserve|insert)"
        r"\s*\(")
    # A container constructed inside the region allocates even
    # without a growth call; DenseBlock's constructor zero-fills an
    # n*k buffer (the block-vector kernels take pre-sized blocks).
    ctor = re.compile(r"\b(?:std::vector|DenseBlock)\s*<[^>]*>\s+\w")
    for f in files:
        if not (f.rel.startswith("src/solvers/") or
                f.rel.startswith("src/sparse/")):
            continue
        in_hot = False
        hot_start = 0
        for no, (raw, code) in enumerate(
                zip(f.raw_lines, f.code_lines), 1):
            # Markers live in comments, so match the raw line; check
            # the -end marker first (the other is its prefix).
            if "acamar: hot-loop-end" in raw:
                in_hot = False
                continue
            if "acamar: hot-loop" in raw:
                in_hot = True
                hot_start = no
                continue
            if not in_hot:
                continue
            if alloc.search(code):
                yield Finding(
                    f.rel, no, "hot-loop-alloc",
                    "allocation in the hot loop opened at line "
                    f"{hot_start}: take a pre-sized SolverWorkspace "
                    "vector instead")
            elif ctor.search(code):
                yield Finding(
                    f.rel, no, "hot-loop-alloc",
                    "container constructed in the hot loop opened "
                    f"at line {hot_start}: size a workspace slot "
                    "(SolverWorkspace::vec/block) before the loop")


@rule("profile-zone",
      "ACAMAR_PROFILE zone names must be string literals (the "
      "profiler aggregates by pointer identity, and tooling greps "
      "for them), and no profiling site may sit inside a "
      "`// acamar: hot-loop` region — zones wrap the loop, never "
      "the iteration body")
def profile_zone(files):
    site = re.compile(r"\bACAMAR_PROFILE(?:_VALUE|_COUNT)?\s*\(")
    literal = re.compile(
        r"\bACAMAR_PROFILE(?:_VALUE|_COUNT)?\s*\(\s*\"")
    for f in files:
        if f.rel == "src/obs/profiler.hh":
            continue  # the macro definitions themselves
        in_hot = False
        hot_start = 0
        for no, (raw, code) in enumerate(
                zip(f.raw_lines, f.code_lines), 1):
            if "acamar: hot-loop-end" in raw:
                in_hot = False
                continue
            if "acamar: hot-loop" in raw:
                in_hot = True
                hot_start = no
                continue
            # Match on the raw line: string literals are blanked out
            # of code_lines, and macro names never appear in strings.
            if raw.lstrip().startswith("#") or not site.search(code):
                continue
            if in_hot:
                yield Finding(
                    f.rel, no, "profile-zone",
                    "profiling site inside the hot loop opened at "
                    f"line {hot_start}: even the disabled check is "
                    "per-iteration overhead — hoist the zone above "
                    "the marker")
            elif not literal.search(raw):
                yield Finding(
                    f.rel, no, "profile-zone",
                    "zone/counter name must be a string literal")


@rule("ledger-coverage",
      "every sparse kernel entry point marked `// acamar: hot-loop` "
      "must open an ACAMAR_WORK_SCOPE above the marker (same "
      "function), so the utilization report never under-counts bytes "
      "moved — a kernel missing from the work ledger silently "
      "inflates every achieved-GB/s figure derived from it; a "
      "fixed-width helper whose scope lives in its dispatcher (e.g. "
      "the width-templated SpMM row kernels) declares that with "
      "`// acamar: ledger-covered-by <zone>`, which is accepted only "
      "when the same file opens ACAMAR_WORK_SCOPE(\"<zone>\"...)")
def ledger_coverage(files):
    covered_by = re.compile(r"acamar:\s*ledger-covered-by\s+(\S+)")
    for f in files:
        if not (f.rel.startswith("src/sparse/") and
                f.rel.endswith(".cc")):
            continue
        for no, raw in enumerate(f.raw_lines, 1):
            # Markers live in comments; skip the -end marker (the
            # opening marker is its prefix) and the ledger-covered-by
            # marker (which also contains "acamar:" but is not a
            # hot-loop opener).
            if "acamar: hot-loop-end" in raw or \
                    "acamar: hot-loop" not in raw:
                continue
            # Walk back to the enclosing function's opening brace
            # (house style puts it alone at column 0) and require a
            # work scope — or a ledger-covered-by delegation —
            # between it and the marker.
            covered = False
            delegated = None  # (zone, line) from ledger-covered-by
            for back in range(no - 2, -1, -1):
                if "ACAMAR_WORK_SCOPE" in f.raw_lines[back]:
                    covered = True
                    break
                m = covered_by.search(f.raw_lines[back])
                if m:
                    delegated = (m.group(1), back + 1)
                    break
                if f.code_lines[back].startswith("{"):
                    break
            if covered:
                continue
            if delegated is not None:
                # The delegation is honest only if the named zone is
                # actually opened somewhere in this file (the
                # dispatcher that calls the helper).
                zone, marker_no = delegated
                opener = f'ACAMAR_WORK_SCOPE("{zone}"'
                if any(opener in ln for ln in f.raw_lines):
                    continue
                yield Finding(
                    f.rel, marker_no, "ledger-coverage",
                    f"ledger-covered-by names zone '{zone}' but no "
                    f'ACAMAR_WORK_SCOPE("{zone}"...) opens it in '
                    "this file — the delegation must point at the "
                    "dispatcher that charges the work")
                continue
            yield Finding(
                f.rel, no, "ledger-coverage",
                "hot-loop kernel without an ACAMAR_WORK_SCOPE: "
                "charge its bytes/flops to the work ledger "
                "(obs/kernel_work.hh has the analytic models), or "
                "mark a helper whose dispatcher owns the scope with "
                "`// acamar: ledger-covered-by <zone>`")


@rule("raw-stderr",
      "diagnostics go through the Logger (common/logging.hh) so "
      "stderr severity filtering works and stdout stays parseable; "
      "raw fprintf(stderr)/std::cerr are forbidden outside "
      "common/logging.cc")
def raw_stderr(files):
    pat = re.compile(r"fprintf\s*\(\s*stderr\b|\bstd::cerr\b")
    for f in files:
        if not (f.rel.startswith("src/") or
                f.rel.startswith("bench/") or
                f.rel.startswith("examples/")):
            continue
        if f.rel == "src/common/logging.cc":
            continue  # the Logger's own backend
        for no, line in enumerate(f.code_lines, 1):
            if pat.search(line):
                yield Finding(f.rel, no, "raw-stderr",
                              "write diagnostics via "
                              "Logger/inform/warn "
                              "(common/logging.hh)")


@rule("header-guard",
      "every header uses an ACAMAR_-prefixed include guard (the "
      "codebase does not rely on #pragma once)")
def header_guard(files):
    for f in files:
        if not f.rel.endswith(".hh") or not f.rel.startswith("src/"):
            continue
        head = "\n".join(f.raw_lines[:40])
        if not re.search(r"#ifndef ACAMAR_\w+_HH", head):
            yield Finding(f.rel, 1, "header-guard",
                          "missing `#ifndef ACAMAR_..._HH` guard")


@rule("raw-sync",
      "threads synchronize through the capability-annotated wrappers "
      "in common/sync.hh (Mutex, MutexLock, CondVar) so Clang's "
      "-Wthread-safety and the lock-rank checker see every lock; raw "
      "std primitives are allowed only inside the wrapper itself")
def raw_sync(files):
    prim = re.compile(
        r"\bstd::(?:recursive_|timed_|recursive_timed_)?mutex\b|"
        r"\bstd::shared_(?:timed_)?mutex\b|"
        r"\bstd::condition_variable(?:_any)?\b|"
        r"\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b|"
        r"\bstd::(?:once_flag|call_once)\b")
    inc = re.compile(
        r"#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>")
    for f in files:
        if not f.rel.startswith("src/"):
            continue
        if f.rel in ("src/common/sync.hh", "src/common/sync.cc"):
            continue  # the wrapper's own implementation
        for no, line in enumerate(f.code_lines, 1):
            if inc.search(line):
                yield Finding(f.rel, no, "raw-sync",
                              "include common/sync.hh, not the std "
                              "synchronization headers")
            elif prim.search(line):
                yield Finding(f.rel, no, "raw-sync",
                              "use acamar::Mutex / MutexLock / "
                              "CondVar (common/sync.hh) so the "
                              "thread-safety analysis and lock-rank "
                              "checker apply")


@rule("cond-wait-predicate",
      "condition-variable waits must pass a predicate — a bare "
      "wait() invites lost wakeups and spurious-wake bugs (CondVar "
      "only offers the predicate form; this catches the timed "
      "variants and any stragglers)")
def cond_wait_predicate(files):

    def top_level_args(f, lineno, col):
        """Count top-level comma-separated args of the call opening
        at (lineno, col) — col indexes the '(' in code_lines. Returns
        None if the closing paren is missing (malformed/truncated)."""
        depth = 0
        args = 1
        empty = True
        no, i = lineno, col
        while no <= len(f.code_lines):
            line = f.code_lines[no - 1]
            while i < len(line):
                c = line[i]
                if c in "([{":
                    depth += 1
                elif c in ")]}":
                    depth -= 1
                    if depth == 0:
                        return 0 if empty else args
                elif depth == 1:
                    if c == ",":
                        args += 1
                    elif not c.isspace():
                        empty = False
                i += 1
            no, i = no + 1, 0
        return None

    # Covers std::condition_variable spellings and acamar::CondVar's
    # camelCase timed variants (waitFor/waitUntil take lock, time,
    # predicate).
    call = re.compile(
        r"[.\->]\s*(wait|wait_for|wait_until|waitFor|waitUntil)"
        r"\s*(\()")
    required = {"wait": 2, "wait_for": 3, "wait_until": 3,
                "waitFor": 3, "waitUntil": 3}
    for f in files:
        for no, line in enumerate(f.code_lines, 1):
            for m in call.finditer(line):
                name = m.group(1)
                # Only condition-variable-ish receivers: the call must
                # be on something cv-named, or any CondVar/condition_
                # variable use in the file. Futures also have wait();
                # anchor on the receiver spelling to stay precise.
                recv = line[:m.start()].rstrip()
                if not re.search(r"(?i)(cv|cond|condition)\w*$", recv):
                    continue
                n = top_level_args(f, no, m.start(2))
                if n is not None and n < required[name]:
                    yield Finding(
                        f.rel, no, "cond-wait-predicate",
                        f"{name}() without a predicate argument: "
                        "pass the wake condition so spurious and "
                        "lost wakeups are handled by construction")


def collect(root, globs):
    seen = {}
    for g in globs:
        for p in sorted(root.glob(g)):
            if "build" in p.parts or "CMakeFiles" in p.parts:
                continue
            if p.is_file():
                seen[p] = None
    return [File(p, root) for p in seen]


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent)
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name, (_, doc) in sorted(RULES.items()):
            print(f"{name}: {doc}")
        return 0

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"acamar_lint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    files = collect(root, ALL_CODE_GLOBS)
    findings = []
    for name, (fn, _) in sorted(RULES.items()):
        for fd in fn(files):
            src = next(f for f in files if f.rel == fd.rel)
            if not src.suppressed(fd.lineno, fd.rule):
                findings.append(fd)

    for fd in sorted(findings, key=lambda f: (f.rel, f.lineno)):
        print(fd)
    n_files = len(files)
    if findings:
        print(f"acamar_lint: {len(findings)} finding(s) in "
              f"{n_files} files", file=sys.stderr)
        return 1
    print(f"acamar_lint: {n_files} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
