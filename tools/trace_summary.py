#!/usr/bin/env python3
"""Aggregate an Acamar JSONL trace into headline numbers.

Reads the JSON Lines file written by --trace=<path> and prints, per
event type, counts plus the figures the paper cares about: iterations
per solver, how often the Solver Modifier had to walk the fallback
chain, reconfiguration events and ICAP busy time, MSID smoothing
activity, the SpMV per-set utilization histogram, and — for runs
traced with --util-report — the host utilization attribution
(per-kernel bytes moved and achieved GB/s against the calibrated
peak, plus the thread-pool busy/idle split). Traces recorded before
the acamar-util-v1 schema simply lack those events; the summary says
so instead of guessing.

The per-job correlation table understands block grouping: when the
batch scheduler fused several jobs into one block solve, the shared
solve events are stamped with the group's primary span and a
block_group event lists every span served, so the table shows one
row per group covering all member spans — shared events counted
exactly once.

    python3 tools/trace_summary.py out.jsonl

Exit status 0 = summary printed, 1 = no valid events found, 2 =
usage error. Malformed lines are counted and skipped, so a truncated
trace (killed run) still summarizes.
"""

import argparse
import json
import sys
from collections import Counter, defaultdict


def load_events(path):
    # errors="replace": a trace truncated mid-character (killed run)
    # or accidentally binary must degrade to skipped lines, not an
    # unhandled UnicodeDecodeError.
    events, bad = [], 0
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError:
                bad += 1
                continue
            if isinstance(ev, dict) and "type" in ev:
                events.append(ev)
            else:
                bad += 1
    return events, bad


def fmt_count(n, unit):
    return f"{n} {unit}{'' if n == 1 else 's'}"


def span_label(spans):
    """Compact label for a set of span ids: "3-6" when contiguous
    (the common case — groups form over adjacent submissions), else
    the comma-joined list."""
    spans = sorted(spans)
    if len(spans) > 1 and \
            spans[-1] - spans[0] == len(spans) - 1:
        return f"{spans[0]}-{spans[-1]}"
    return ",".join(str(s) for s in spans)


def summarize(events, out):
    by_type = defaultdict(list)
    for ev in events:
        by_type[ev["type"]].append(ev)

    out.write("event counts:\n")
    for t in sorted(by_type):
        out.write(f"  {t:<18} {len(by_type[t])}\n")

    iters = by_type.get("solve_iteration", [])
    if iters:
        per_solver = Counter(ev.get("solver", "?") for ev in iters)
        out.write("\nsolver iterations:\n")
        for solver, n in per_solver.most_common():
            last = max((ev for ev in iters
                        if ev.get("solver") == solver),
                       key=lambda ev: ev.get("iteration", 0))
            out.write(f"  {solver:<12} {n:>6} iterations, last "
                      f"residual {last.get('residual', '?')}\n")

    switches = by_type.get("solver_switch", [])
    breakdowns = by_type.get("solver_breakdown", [])
    if switches or breakdowns:
        out.write("\nrobust-convergence path:\n")
        for ev in breakdowns:
            out.write(f"  breakdown: {ev.get('solver', '?')} at "
                      f"iteration {ev.get('iteration', '?')} "
                      f"({ev.get('reason', '?')})\n")
        for ev in switches:
            out.write(f"  switch: {ev.get('from', '?')} -> "
                      f"{ev.get('to', '?')} on "
                      f"{ev.get('trigger', '?')} (attempt "
                      f"{ev.get('attempt', '?')})\n")

    reconfigs = by_type.get("reconfig", [])
    icap = by_type.get("icap_transfer", [])
    if reconfigs or icap:
        out.write("\nreconfiguration:\n")
        per_region = Counter(ev.get("region", "?")
                             for ev in reconfigs)
        for region, n in sorted(per_region.items()):
            out.write(f"  {region} region: "
                      f"{fmt_count(n, 'DFX event')}\n")
        busy = sum(ev.get("cycles", 0) for ev in icap)
        if icap:
            out.write(f"  ICAP: {fmt_count(len(icap), 'transfer')}, "
                      f"{busy} kernel cycles busy\n")

    msid = by_type.get("msid_decision", [])
    if msid:
        per_stage = Counter(ev.get("stage", "?") for ev in msid)
        stages = ", ".join(f"stage {s}: {n}"
                           for s, n in sorted(per_stage.items()))
        out.write(f"\nMSID smoothing: {len(msid)} adoptions "
                  f"({stages})\n")

    sets = by_type.get("spmv_set", [])
    if sets:
        utils = [ev.get("utilization", 0.0) for ev in sets]
        mean = sum(utils) / len(utils)
        hist = Counter(min(int(u * 10), 9) for u in utils)
        out.write(f"\nSpMV sets: {len(sets)}, mean utilization "
                  f"{mean:.3f}\n")
        for b in range(10):
            n = hist.get(b, 0)
            bar = "#" * n if n <= 60 else "#" * 60 + "+"
            out.write(f"  [{b / 10:.1f},{(b + 1) / 10:.1f}) "
                      f"{n:>5} {bar}\n")

    phases = by_type.get("phase", [])
    if phases:
        out.write("\nphases:\n")
        for ev in phases:
            out.write(f"  {ev.get('name', '?'):<16} start "
                      f"{ev.get('start_cycles', 0):>12} dur "
                      f"{ev.get('duration_cycles', 0):>12}  "
                      f"{ev.get('detail', '')}\n")

    health = by_type.get("health", [])
    if health:
        out.write("\nrun health:\n")
        for ev in health:
            out.write(f"  {ev.get('kind', '?'):<14} "
                      f"{ev.get('solver', '?'):<12} iteration "
                      f"{ev.get('iteration', '?'):>5} residual "
                      f"{ev.get('residual', '?')}  "
                      f"{ev.get('detail', '')}\n")

    samples = by_type.get("metrics_sample", [])
    if samples:
        last = samples[-1]
        rss = last.get("rss_bytes", 0.0)
        out.write(f"\nmetrics sampler: {len(samples)} passes, last "
                  f"rss {rss / (1 << 20):.1f} MiB, last throughput "
                  f"{last.get('iterations_per_sec', 0.0):.0f} it/s\n")

    util_kernels = by_type.get("util_kernel", [])
    util_pool = by_type.get("util_pool", [])
    if util_kernels or util_pool:
        out.write("\nutilization attribution:\n")
        for ev in sorted(util_kernels,
                         key=lambda e: e.get("zone", "?")):
            gbps = ev.get("achieved_gbps")
            peak = ev.get("peak_gbps")
            rate = "-" if gbps is None else f"{gbps:8.2f} GB/s"
            if gbps is not None and peak:
                rate += f" ({100.0 * gbps / peak:.0f}% of " \
                        f"{peak:.1f} peak)"
            out.write(f"  {ev.get('zone', '?'):<24} "
                      f"{ev.get('calls', 0):>8} calls "
                      f"{ev.get('bytes', 0):>14} B  {rate}\n")
        for ev in util_pool:
            busy = ev.get("busy_ns", 0)
            idle = ev.get("idle_ns", 0)
            frac = busy / (busy + idle) if busy + idle else 0.0
            out.write(f"  pool: busy {busy} ns, idle {idle} ns "
                      f"({100.0 * frac:.1f}% busy), "
                      f"{ev.get('tasks', 0)} tasks, "
                      f"{ev.get('steals', 0)} stolen\n")
    else:
        out.write("\nutilization attribution: no util events — the "
                  "trace predates acamar-util-v1 or the run had no "
                  "--util-report\n")

    # Per-job correlation table: any event stamped with a run/span id
    # resolves back to its submitting batch job.
    jobs = defaultdict(lambda: {"events": 0, "iterations": 0,
                                "anomalies": Counter()})
    for ev in events:
        run_id, span_id = ev.get("run_id"), ev.get("span_id")
        if run_id is None or span_id is None:
            continue
        job = jobs[(run_id, span_id)]
        job["events"] += 1
        if ev["type"] == "solve_iteration":
            job["iterations"] += 1
        elif ev["type"] == "health":
            job["anomalies"][ev.get("kind", "?")] += 1

    # When the batch scheduler coalesced jobs into a block solve, the
    # shared solve events carry the group's PRIMARY span only, and a
    # block_group event lists every span the solve served. Aggregate
    # each group into one row covering all its member spans: the
    # shared events appear exactly once — neither credited to the
    # primary alone (which hides the members) nor replicated per
    # member (which would double-count them).
    block_groups = {}
    for ev in by_type.get("block_group", []):
        run_id, span_id = ev.get("run_id"), ev.get("span_id")
        if run_id is None or span_id is None:
            continue
        block_groups[(run_id, span_id)] = {
            "solver": ev.get("solver", "?"),
            "members": [int(s) for s in ev.get("member_spans", [])],
        }
    folded = set()  # non-primary member keys absorbed into a group row
    for (run_id, primary), group in block_groups.items():
        for s in group["members"]:
            if s != primary:
                folded.add((run_id, s))

    if jobs:
        out.write("\nper-job correlation:\n")
        out.write(f"  {'run_id':<17} {'spans':>9} {'events':>7} "
                  f"{'iters':>6}  anomalies\n")
        for (run_id, span_id), job in sorted(jobs.items()):
            if (run_id, span_id) in folded:
                continue  # shown on its group's row
            events_n = job["events"]
            iters_n = job["iterations"]
            anomalies_c = Counter(job["anomalies"])
            label = str(span_id)
            note = ""
            group = block_groups.get((run_id, span_id))
            if group:
                members = group["members"]
                for s in members:
                    if s == span_id:
                        continue
                    # A member span usually has no events of its own
                    # (the group runs under the primary span), but if
                    # any were stamped with it, merge them here.
                    other = jobs.get((run_id, s))
                    if other:
                        events_n += other["events"]
                        iters_n += other["iterations"]
                        anomalies_c.update(other["anomalies"])
                label = span_label(members)
                note = (f"  [block x{len(members)} "
                        f"{group['solver']}]")
            anomalies = ", ".join(
                f"{k}x{n}" if n > 1 else k
                for k, n in sorted(anomalies_c.items())) or "-"
            out.write(f"  {run_id:<17} {label:>9} "
                      f"{events_n:>7} {iters_n:>6}  "
                      f"{anomalies}{note}\n")


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="JSONL trace from --trace=<path>")
    args = ap.parse_args(argv)

    try:
        events, bad = load_events(args.trace)
    except OSError as e:
        print(f"trace_summary: {e}", file=sys.stderr)
        return 2

    if not events:
        if bad:
            print(f"trace_summary: {args.trace} holds no valid "
                  f"trace events ({bad} malformed lines — "
                  "truncated or not a JSONL trace?)",
                  file=sys.stderr)
        else:
            print(f"trace_summary: {args.trace} is empty — did the "
                  "run execute with --trace=<path>?",
                  file=sys.stderr)
        return 1

    print(f"{args.trace}: {len(events)} events"
          + (f" ({bad} malformed lines skipped)" if bad else ""))
    summarize(events, sys.stdout)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:
        # `trace_summary.py out.jsonl | head` must not traceback.
        sys.exit(0)
