#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py (run by perf_smoke.sh).

    python3 tools/test_bench_compare.py
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_compare  # noqa: E402


def record(bench="fig6_speedup", dim=4096, jobs=1, wall=1.0,
           per_second=100.0, digest="abc123", zones=None, util=None,
           spmm=None):
    if zones is None:
        zones = [{"path": "accel/run", "calls": 1, "total_ns": 10,
                  "self_ns": 10, "p50_ns": 10, "p90_ns": 10,
                  "p99_ns": 10}]
    rec = _base_record(bench, dim, jobs, wall, per_second, digest,
                       zones)
    if util is not None:
        rec["util"] = util
    if spmm is not None:
        rec["spmm"] = spmm
    return rec


def util_object(gbps=2.0, total_ns=1000):
    """A minimal valid "util" object whose aggregate rate is gbps."""
    return {
        "peak_gbps": 10.0,
        "kernels": [{"zone": "sparse/spmv_rows", "calls": 1,
                     "bytes": int(gbps * total_ns), "flops": 100,
                     "total_ns": total_ns, "achieved_gbps": gbps}],
        "pool": {"busy_ns": 900, "idle_ns": 100, "tasks": 4,
                 "steals": 1},
    }


def spmm_object(amortization=2.0, k=8):
    """A minimal valid "spmm" object (bench/spmm_kernels records)."""
    return {
        "k": k,
        "scalar_bytes": 1.0e9,
        "amortization": amortization,
        "kernels": [{"kernel": "csr spmm", "us_per_op": 100.0,
                     "eff_gbps": 20.0, "amortization": amortization,
                     "identical": True}],
    }


def _base_record(bench, dim, jobs, wall, per_second, digest, zones):
    return {
        "schema": bench_compare.SCHEMA,
        "bench": bench,
        "dim": dim,
        "jobs": jobs,
        "git_sha": "deadbee",
        "wall_seconds": wall,
        "throughput": {"unit": "items", "count": per_second * wall,
                       "per_second": per_second},
        "profile": {"digest": digest, "zones": zones,
                    "counters": {}, "histograms": {},
                    "timeline_dropped": 0},
    }


def write_json(tmpdir, name, obj):
    path = os.path.join(tmpdir, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(obj, fh)
    return path


def run_compare(baseline, current, threshold=15.0, report_only=False,
                update_baseline=False):
    """Invoke cmd_compare; return (exit_status, captured_stdout)."""
    args = type("Args", (), {"baseline": baseline, "current": current,
                             "threshold": threshold,
                             "report_only": report_only,
                             "update_baseline": update_baseline})()
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        status = bench_compare.cmd_compare(args)
    return status, out.getvalue()


class ValidateTest(unittest.TestCase):
    def test_good_record_has_no_errors(self):
        self.assertEqual(
            bench_compare.validate_record(record(), "t"), [])

    def test_missing_field_is_reported(self):
        rec = record()
        del rec["wall_seconds"]
        errors = bench_compare.validate_record(rec, "t")
        self.assertTrue(any("wall_seconds" in e for e in errors))


class ProfileDigestTest(unittest.TestCase):
    def test_profiled_record_yields_digest(self):
        self.assertEqual(bench_compare.profile_digest(record()),
                         "abc123")

    def test_empty_digest_is_none(self):
        self.assertIsNone(
            bench_compare.profile_digest(record(digest="")))

    def test_empty_zone_tree_is_none(self):
        # An unprofiled run writes a seed-only digest over zero
        # zones; it must not be compared against profiled runs.
        self.assertIsNone(
            bench_compare.profile_digest(record(zones=[])))


class UtilFieldTest(unittest.TestCase):
    def test_record_with_util_is_valid(self):
        rec = record(util=util_object())
        self.assertEqual(bench_compare.validate_record(rec, "t"), [])

    def test_record_without_util_is_valid(self):
        # Pre-util baselines must keep validating unchanged.
        self.assertEqual(
            bench_compare.validate_record(record(), "t"), [])

    def test_malformed_util_is_reported(self):
        rec = record(util={"kernels": "nope"})
        errors = bench_compare.validate_record(rec, "t")
        self.assertTrue(any("kernels" in e for e in errors))
        self.assertTrue(any("pool" in e for e in errors))

    def test_bad_kernel_field_type_is_reported(self):
        util = util_object()
        util["kernels"][0]["bytes"] = "many"
        errors = bench_compare.validate_record(record(util=util), "t")
        self.assertTrue(any("bytes" in e for e in errors))

    def test_util_gbps_aggregates_kernels(self):
        rec = record(util=util_object(gbps=2.0, total_ns=1000))
        self.assertAlmostEqual(bench_compare.util_gbps(rec), 2.0)

    def test_util_gbps_none_without_util(self):
        self.assertIsNone(bench_compare.util_gbps(record()))

    def test_compare_prints_bandwidth_diff_when_both_carry_util(self):
        with tempfile.TemporaryDirectory() as tmp:
            base = write_json(tmp, "b.json",
                              record(util=util_object(gbps=2.0)))
            cur = write_json(tmp, "c.json",
                             record(util=util_object(gbps=3.0)))
            status, out = run_compare(base, cur)
            self.assertEqual(status, 0)
            self.assertIn("achieved bandwidth", out)
            self.assertIn("GB/s", out)

    def test_compare_skips_pre_util_baseline_with_note(self):
        # A baseline recorded before the schema grew "util" must not
        # fail a current run that carries it.
        with tempfile.TemporaryDirectory() as tmp:
            base = write_json(tmp, "b.json", record())
            cur = write_json(tmp, "c.json",
                             record(util=util_object()))
            status, out = run_compare(base, cur)
            self.assertEqual(status, 0)
            self.assertIn("utilization not comparable", out)
            self.assertNotIn("achieved bandwidth", out)

    def test_compare_stays_silent_when_neither_side_has_util(self):
        with tempfile.TemporaryDirectory() as tmp:
            base = write_json(tmp, "b.json", record())
            cur = write_json(tmp, "c.json", record())
            status, out = run_compare(base, cur)
            self.assertEqual(status, 0)
            self.assertNotIn("utilization not comparable", out)


class SpmmFieldTest(unittest.TestCase):
    def test_record_with_spmm_is_valid(self):
        rec = record(bench="spmm_kernels", spmm=spmm_object())
        self.assertEqual(bench_compare.validate_record(rec, "t"), [])

    def test_malformed_spmm_is_reported(self):
        rec = record(spmm={"k": "eight", "kernels": [{}]})
        errors = bench_compare.validate_record(rec, "t")
        self.assertTrue(any("'k'" in e for e in errors))
        self.assertTrue(any("amortization" in e for e in errors))
        self.assertTrue(any("kernels[0]" in e for e in errors))

    def test_amortization_none_without_spmm(self):
        self.assertIsNone(
            bench_compare.spmm_amortization(record()))

    def test_compare_prints_amortization_when_both_carry_spmm(self):
        with tempfile.TemporaryDirectory() as tmp:
            base = write_json(tmp, "b.json",
                              record(spmm=spmm_object(2.0)))
            cur = write_json(tmp, "c.json",
                             record(spmm=spmm_object(2.2)))
            status, out = run_compare(base, cur)
            self.assertEqual(status, 0)
            self.assertIn("SpMM amortization", out)
            self.assertIn("2.20x", out)
            self.assertNotIn("below target", out)

    def test_compare_flags_amortization_below_target(self):
        with tempfile.TemporaryDirectory() as tmp:
            base = write_json(tmp, "b.json",
                              record(spmm=spmm_object(2.0)))
            cur = write_json(tmp, "c.json",
                             record(spmm=spmm_object(1.1)))
            status, out = run_compare(base, cur)
            # Report-only by design: below-target amortization is
            # flagged, never failed.
            self.assertEqual(status, 0)
            self.assertIn("below target", out)

    def test_compare_skips_pre_spmm_baseline_with_note(self):
        # A baseline recorded before the fused kernels existed must
        # not fail a current run whose record carries "spmm".
        with tempfile.TemporaryDirectory() as tmp:
            base = write_json(tmp, "b.json", record())
            cur = write_json(tmp, "c.json",
                             record(spmm=spmm_object()))
            status, out = run_compare(base, cur)
            self.assertEqual(status, 0)
            self.assertIn("SpMM amortization not comparable", out)

    def test_compare_stays_silent_when_neither_side_has_spmm(self):
        with tempfile.TemporaryDirectory() as tmp:
            base = write_json(tmp, "b.json", record())
            cur = write_json(tmp, "c.json", record())
            status, out = run_compare(base, cur)
            self.assertEqual(status, 0)
            self.assertNotIn("SpMM amortization", out)


class CompareTest(unittest.TestCase):
    def test_identical_runs_pass(self):
        with tempfile.TemporaryDirectory() as tmp:
            b = write_json(tmp, "b.json", record())
            c = write_json(tmp, "c.json", record())
            status, out = run_compare(b, c)
        self.assertEqual(status, 0)
        self.assertIn("no regressions", out)

    def test_slowdown_beyond_threshold_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            b = write_json(tmp, "b.json", record(wall=1.0))
            c = write_json(tmp, "c.json", record(wall=2.0))
            status, out = run_compare(b, c)
        self.assertEqual(status, 1)
        self.assertIn("REGRESSION", out)

    def test_report_only_never_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            b = write_json(tmp, "b.json", record(wall=1.0))
            c = write_json(tmp, "c.json", record(wall=2.0))
            status, _ = run_compare(b, c, report_only=True)
        self.assertEqual(status, 0)

    def test_digest_change_is_informational(self):
        with tempfile.TemporaryDirectory() as tmp:
            b = write_json(tmp, "b.json", record(digest="aaa"))
            c = write_json(tmp, "c.json", record(digest="bbb"))
            status, out = run_compare(b, c)
        self.assertEqual(status, 0)
        self.assertIn("digest changed", out)

    def test_unprofiled_side_skips_digest_with_note(self):
        # Missing digest on either side: not comparable, skip — the
        # run must still pass and say why.
        with tempfile.TemporaryDirectory() as tmp:
            b = write_json(tmp, "b.json", record(digest="aaa"))
            c = write_json(tmp, "c.json", record(zones=[]))
            status, out = run_compare(b, c)
        self.assertEqual(status, 0)
        self.assertIn("not comparable", out)
        self.assertNotIn("digest changed", out)


class UpdateBaselineTest(unittest.TestCase):
    def test_rewrites_baseline_from_current_run(self):
        with tempfile.TemporaryDirectory() as tmp:
            b = write_json(tmp, "b.json", record(wall=1.0))
            c = write_json(tmp, "c.json", record(wall=2.0))
            status, out = run_compare(b, c, update_baseline=True)
            with open(b, encoding="utf-8") as fh:
                updated = json.load(fh)
        # Even a >threshold slowdown exits 0: the point is accepting
        # the new numbers as the reference.
        self.assertEqual(status, 0)
        self.assertIn("baseline", out)
        self.assertEqual(updated["schema"], bench_compare.SET_SCHEMA)
        self.assertEqual(len(updated["records"]), 1)
        self.assertEqual(updated["records"][0]["wall_seconds"], 2.0)

    def test_keeps_records_absent_from_current_run(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline_set = {
                "schema": bench_compare.SET_SCHEMA,
                "records": [record(wall=1.0),
                            record(bench="fig9", wall=3.0)],
            }
            b = write_json(tmp, "b.json", baseline_set)
            c = write_json(tmp, "c.json", record(wall=2.0))
            status, out = run_compare(b, c, update_baseline=True)
            with open(b, encoding="utf-8") as fh:
                updated = json.load(fh)
        self.assertEqual(status, 0)
        self.assertIn("carried over", out)
        by_bench = {r["bench"]: r for r in updated["records"]}
        self.assertEqual(by_bench["fig6_speedup"]["wall_seconds"],
                         2.0)
        self.assertEqual(by_bench["fig9"]["wall_seconds"], 3.0)

    def test_invalid_current_leaves_baseline_untouched(self):
        with tempfile.TemporaryDirectory() as tmp:
            bad = record(wall=2.0)
            del bad["throughput"]
            b = write_json(tmp, "b.json", record(wall=1.0))
            c = write_json(tmp, "c.json", bad)
            err = io.StringIO()
            with contextlib.redirect_stderr(err):
                status, _ = run_compare(b, c, update_baseline=True)
            with open(b, encoding="utf-8") as fh:
                untouched = json.load(fh)
        self.assertEqual(status, 2)
        self.assertIn("untouched", err.getvalue())
        self.assertEqual(untouched["wall_seconds"], 1.0)


class MergeTest(unittest.TestCase):
    def test_merge_dedups_by_key_and_validates(self):
        with tempfile.TemporaryDirectory() as tmp:
            a = write_json(tmp, "a.json", record(wall=1.0))
            b = write_json(tmp, "b.json", record(wall=2.0))
            other = write_json(tmp, "o.json", record(bench="fig9"))
            out_path = os.path.join(tmp, "set.json")
            args = type("Args", (), {"files": [a, b, other],
                                     "out": out_path})()
            with contextlib.redirect_stdout(io.StringIO()):
                status = bench_compare.cmd_merge(args)
            self.assertEqual(status, 0)
            with open(out_path, encoding="utf-8") as fh:
                merged = json.load(fh)
        self.assertEqual(merged["schema"], bench_compare.SET_SCHEMA)
        self.assertEqual(len(merged["records"]), 2)


if __name__ == "__main__":
    unittest.main()
