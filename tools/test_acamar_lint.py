#!/usr/bin/env python3
"""Selftests for tools/acamar_lint.py.

Each case materializes a fixture tree in a temp directory, runs the
linter against it, and checks how many findings the rule under test
produced (other rules' findings are filtered out, so fixtures don't
have to be clean for every rule at once). Run standalone or as the
`lint-selftest` ctest:

    python3 tools/test_acamar_lint.py
"""

import subprocess
import sys
import tempfile
from pathlib import Path

LINT = Path(__file__).resolve().parent / "acamar_lint.py"

# Reusable fixture fragments.
GUARD = "#ifndef ACAMAR_X_HH\n#define ACAMAR_X_HH\n{}\n#endif\n"


class Case:
    def __init__(self, name, rule, files, expect):
        """`files` maps repo-relative path -> content; `expect` is the
        number of findings the rule should report on the fixture."""
        self.name, self.rule = name, rule
        self.files, self.expect = files, expect


CASES = [
    # ----- raw-sync (the thread-safety tentpole) -----
    Case("raw-sync: std::mutex member flagged", "raw-sync",
         {"src/exec/pool.hh": GUARD.format("std::mutex m_;")}, 1),
    Case("raw-sync: std header include flagged", "raw-sync",
         {"src/exec/pool.cc": "#include <mutex>\n"}, 1),
    Case("raw-sync: condition_variable flagged", "raw-sync",
         {"src/exec/pool.cc": "std::condition_variable cv_;\n"}, 1),
    Case("raw-sync: lock_guard flagged (one finding per line)",
         "raw-sync",
         {"src/exec/pool.cc":
          "void f() { std::lock_guard<std::mutex> lk(m_); }\n"}, 1),
    Case("raw-sync: call_once flagged", "raw-sync",
         {"src/exec/pool.cc":
          "std::once_flag once;\nstd::call_once(once, init);\n"}, 2),
    Case("raw-sync: wrapper types allowed", "raw-sync",
         {"src/exec/pool.cc":
          '#include "common/sync.hh"\n'
          'Mutex m_{LockRank::kLeaf, "leaf"};\n'
          "void f() { MutexLock lk(m_); }\n"}, 0),
    Case("raw-sync: sync.hh itself exempt", "raw-sync",
         {"src/common/sync.hh":
          GUARD.format("#include <mutex>\nstd::mutex m_;")}, 0),
    Case("raw-sync: tests exempt (src-only rule)", "raw-sync",
         {"tests/test_x.cc": "std::mutex m;\n"}, 0),
    Case("raw-sync: comment mention not flagged", "raw-sync",
         {"src/exec/pool.cc": "// was std::mutex before sync.hh\n"}, 0),
    Case("raw-sync: lint-ok suppression honored", "raw-sync",
         {"src/exec/pool.cc":
          "std::mutex m_;  // lint-ok: raw-sync\n"}, 0),

    # ----- cond-wait-predicate -----
    Case("cond-wait: bare wait flagged", "cond-wait-predicate",
         {"src/exec/pool.cc": "void f() { cv_.wait(lk); }\n"}, 1),
    Case("cond-wait: predicate wait allowed", "cond-wait-predicate",
         {"src/exec/pool.cc":
          "void f() { cv_.wait(lk, [&] { return ready; }); }\n"}, 0),
    Case("cond-wait: multi-line predicate allowed",
         "cond-wait-predicate",
         {"src/exec/pool.cc":
          "void f() {\n"
          "    cv_.wait(lk, [this] {\n"
          "        return stop_ || queued_ > 0;\n"
          "    });\n"
          "}\n"}, 0),
    Case("cond-wait: wait_for without predicate flagged",
         "cond-wait-predicate",
         {"src/exec/pool.cc":
          "void f() { cond.wait_for(lk, 1s); }\n"}, 1),
    Case("cond-wait: wait_for with predicate allowed",
         "cond-wait-predicate",
         {"src/exec/pool.cc":
          "void f() { cond.wait_for(lk, 1s, [&] { return ok; }); }\n"},
         0),
    Case("cond-wait: wait_until without predicate flagged",
         "cond-wait-predicate",
         {"src/exec/pool.cc":
          "void f() { my_cv.wait_until(lk, deadline); }\n"}, 1),
    Case("cond-wait: future.wait() not a cv, ignored",
         "cond-wait-predicate",
         {"src/exec/pool.cc": "void f() { future.wait(); }\n"}, 1 - 1),
    Case("cond-wait: commas inside nested parens don't count",
         "cond-wait-predicate",
         {"src/exec/pool.cc":
          "void f() { cv_.wait(std::max(a, b)); }\n"}, 1),
    Case("cond-wait: suppression honored", "cond-wait-predicate",
         {"src/exec/pool.cc":
          "void f() { cv_.wait(lk); }  // lint-ok: cond-wait-predicate\n"},
         0),
    Case("cond-wait: CondVar waitFor without predicate flagged",
         "cond-wait-predicate",
         {"src/exec/pool.cc":
          "void f() { cv_.waitFor(lk, period); }\n"}, 1),
    Case("cond-wait: CondVar waitFor with predicate allowed",
         "cond-wait-predicate",
         {"src/exec/pool.cc":
          "void f() { cv_.waitFor(lk, period, "
          "[this] { return stop_; }); }\n"}, 0),
    Case("cond-wait: CondVar waitUntil without predicate flagged",
         "cond-wait-predicate",
         {"src/exec/pool.cc":
          "void f() { cond_.waitUntil(lk, deadline); }\n"}, 1),

    # ----- pre-existing rules: one positive / one negative each -----
    Case("raw-new-delete: new flagged", "raw-new-delete",
         {"src/a.cc": "int *p = new int;\n"}, 1),
    Case("raw-new-delete: make_unique allowed", "raw-new-delete",
         {"src/a.cc": "auto p = std::make_unique<int>(3);\n"}, 0),
    Case("std-rand: rand() flagged", "std-rand",
         {"src/a.cc": "int x = rand();\n"}, 1),
    Case("std-rand: Rng allowed", "std-rand",
         {"src/a.cc": "Rng rng(7); int x = rng.nextInt(9);\n"}, 0),
    Case("legacy-assert: flagged", "legacy-assert",
         {"src/a.cc": "ACAMAR_ASSERT(x > 0);\n"}, 1),
    Case("legacy-assert: check macros allowed", "legacy-assert",
         {"src/a.cc": "ACAMAR_CHECK(x > 0) << x;\n"}, 0),
    Case("narrowing: implicit flagged", "narrowing",
         {"src/fpga/a.cc": "int lut = 1.5 * scale;\n"}, 1),
    Case("narrowing: explicit cast allowed", "narrowing",
         {"src/fpga/a.cc":
          "int lut = static_cast<int>(1.5 * scale);\n"}, 0),
    Case("c-int-cast: C cast flagged", "c-int-cast",
         {"src/fpga/a.cc": "auto v = (int)x;\n"}, 1),
    Case("c-int-cast: static_cast allowed", "c-int-cast",
         {"src/fpga/a.cc": "auto v = static_cast<int>(x);\n"}, 0),
    Case("solver-convergence: bare solve flagged",
         "solver-convergence",
         {"src/solvers/foo.cc":
          "Result Foo::solve(W &w) { return r; }\n"}, 1),
    Case("solver-convergence: monitor present allowed",
         "solver-convergence",
         {"src/solvers/foo.cc":
          "Result Foo::solve(W &w) {\n"
          "    ConvergenceMonitor mon(criteria);\n"
          "    return r;\n"
          "}\n"}, 0),
    Case("hot-loop-alloc: push_back in region flagged",
         "hot-loop-alloc",
         {"src/solvers/a.cc":
          "// acamar: hot-loop\n"
          "v.push_back(x);\n"
          "// acamar: hot-loop-end\n"}, 1),
    Case("hot-loop-alloc: outside region allowed", "hot-loop-alloc",
         {"src/solvers/a.cc":
          "v.push_back(x);\n"
          "// acamar: hot-loop\n"
          "y += v[i];\n"
          "// acamar: hot-loop-end\n"}, 0),
    Case("hot-loop-alloc: assign/reserve in region flagged",
         "hot-loop-alloc",
         {"src/sparse/a.cc":
          "// acamar: hot-loop\n"
          "buf.assign(n, 0.0f);\n"
          "buf.reserve(n);\n"
          "// acamar: hot-loop-end\n"}, 2),
    Case("hot-loop-alloc: container constructed in region flagged",
         "hot-loop-alloc",
         {"src/sparse/a.cc":
          "// acamar: hot-loop\n"
          "DenseBlock<float> scratch(n, k);\n"
          "std::vector<float> tmp(n);\n"
          "// acamar: hot-loop-end\n"}, 2),
    Case("hot-loop-alloc: block param reference outside region "
         "allowed", "hot-loop-alloc",
         {"src/sparse/a.cc":
          "void f(const DenseBlock<float> &x, std::vector<float> &y)\n"
          "{\n"
          "    // acamar: hot-loop\n"
          "    y[0] += x.at(0, 0);\n"
          "    // acamar: hot-loop-end\n"
          "}\n"}, 0),
    Case("ledger-coverage: unledgered sparse kernel flagged",
         "ledger-coverage",
         {"src/sparse/a.cc":
          "void f()\n"
          "{\n"
          "    // acamar: hot-loop\n"
          "    y += v[i];\n"
          "    // acamar: hot-loop-end\n"
          "}\n"}, 1),
    Case("ledger-coverage: work scope above marker allowed",
         "ledger-coverage",
         {"src/sparse/a.cc":
          "void f()\n"
          "{\n"
          '    ACAMAR_WORK_SCOPE("sparse/f", fWork(n, 8));\n'
          "    // acamar: hot-loop\n"
          "    y += v[i];\n"
          "    // acamar: hot-loop-end\n"
          "}\n"}, 1 - 1),
    Case("ledger-coverage: scope in a different function not "
         "credited", "ledger-coverage",
         {"src/sparse/a.cc":
          "void g()\n"
          "{\n"
          '    ACAMAR_WORK_SCOPE("sparse/g", gWork(n, 8));\n'
          "}\n"
          "void f()\n"
          "{\n"
          "    // acamar: hot-loop\n"
          "    y += v[i];\n"
          "    // acamar: hot-loop-end\n"
          "}\n"}, 1),
    Case("ledger-coverage: solvers out of scope (profiler zones "
         "cover them)", "ledger-coverage",
         {"src/solvers/a.cc":
          "void f()\n"
          "{\n"
          "    // acamar: hot-loop\n"
          "    y += v[i];\n"
          "    // acamar: hot-loop-end\n"
          "}\n"}, 0),
    Case("ledger-coverage: ledger-covered-by with matching scope in "
         "file allowed", "ledger-coverage",
         {"src/sparse/a.cc":
          "template <typename T, size_t K>\n"
          "void helper(const T *x, T *y)\n"
          "{\n"
          "    // acamar: ledger-covered-by sparse/f\n"
          "    // acamar: hot-loop\n"
          "    y[0] += x[0];\n"
          "    // acamar: hot-loop-end\n"
          "}\n"
          "void f()\n"
          "{\n"
          '    ACAMAR_WORK_SCOPE("sparse/f", fWork(n, 8));\n'
          "    helper(x, y);\n"
          "}\n"}, 0),
    Case("ledger-coverage: ledger-covered-by naming an unopened zone "
         "flagged", "ledger-coverage",
         {"src/sparse/a.cc":
          "void helper(const float *x, float *y)\n"
          "{\n"
          "    // acamar: ledger-covered-by sparse/nope\n"
          "    // acamar: hot-loop\n"
          "    y[0] += x[0];\n"
          "    // acamar: hot-loop-end\n"
          "}\n"
          "void f()\n"
          "{\n"
          '    ACAMAR_WORK_SCOPE("sparse/f", fWork(n, 8));\n'
          "    helper(x, y);\n"
          "}\n"}, 1),
    Case("ledger-coverage: ledger-covered-by in a different function "
         "not credited", "ledger-coverage",
         {"src/sparse/a.cc":
          "void g()\n"
          "{\n"
          "    // acamar: ledger-covered-by sparse/f\n"
          "}\n"
          "void helper(const float *x, float *y)\n"
          "{\n"
          "    // acamar: hot-loop\n"
          "    y[0] += x[0];\n"
          "    // acamar: hot-loop-end\n"
          "}\n"
          "void f()\n"
          "{\n"
          '    ACAMAR_WORK_SCOPE("sparse/f", fWork(n, 8));\n'
          "}\n"}, 1),
    Case("ledger-coverage: suppression honored", "ledger-coverage",
         {"src/sparse/a.cc":
          "void f()\n"
          "{\n"
          "    // acamar: hot-loop  (lint-ok: ledger-coverage)\n"
          "    y += v[i];\n"
          "    // acamar: hot-loop-end\n"
          "}\n"}, 0),
    Case("profile-zone: non-literal name flagged", "profile-zone",
         {"src/a.cc": "ACAMAR_PROFILE(zoneName);\n"}, 1),
    Case("profile-zone: literal name allowed", "profile-zone",
         {"src/a.cc": 'ACAMAR_PROFILE("solver/cg");\n'}, 0),
    Case("raw-stderr: std::cerr flagged", "raw-stderr",
         {"src/a.cc": 'std::cerr << "oops";\n'}, 1),
    Case("raw-stderr: logging.cc exempt", "raw-stderr",
         {"src/common/logging.cc": 'std::cerr << "oops";\n'}, 0),
    Case("header-guard: missing guard flagged", "header-guard",
         {"src/a.hh": "struct A {};\n"}, 1),
    Case("header-guard: guard present allowed", "header-guard",
         {"src/a.hh": GUARD.format("struct A {};")}, 0),
]


def run_case(case):
    with tempfile.TemporaryDirectory(prefix="lintself_") as td:
        root = Path(td)
        (root / "src").mkdir()
        for rel, content in case.files.items():
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(content)
        proc = subprocess.run(
            [sys.executable, str(LINT), "--root", str(root)],
            capture_output=True, text=True)
        tag = f"[{case.rule}]"
        hits = [ln for ln in proc.stdout.splitlines() if tag in ln]
        if len(hits) != case.expect:
            return (f"{case.name}: expected {case.expect} "
                    f"{case.rule} finding(s), got {len(hits)}:\n"
                    + "\n".join(f"    {h}" for h in hits))
        # Exit-code contract: 1 iff any findings at all, else 0.
        any_findings = bool(proc.stdout.strip()
                            and "files clean" not in proc.stdout)
        if any_findings and proc.returncode != 1:
            return f"{case.name}: findings but exit {proc.returncode}"
        if not any_findings and proc.returncode != 0:
            return f"{case.name}: clean but exit {proc.returncode}"
        return None


def main():
    # Every rule the linter registers must have at least one fixture,
    # so a new rule without selftests fails here, not in review.
    listing = subprocess.run(
        [sys.executable, str(LINT), "--list-rules"],
        capture_output=True, text=True)
    registered = {ln.split(":", 1)[0]
                  for ln in listing.stdout.splitlines() if ":" in ln}
    covered = {c.rule for c in CASES}
    failures = []
    missing = registered - covered
    if missing:
        failures.append("rules without selftest fixtures: "
                        + ", ".join(sorted(missing)))

    for case in CASES:
        err = run_case(case)
        status = "FAIL" if err else "ok"
        print(f"  {status:4} {case.name}")
        if err:
            failures.append(err)

    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nlint selftest: {len(CASES)} cases, "
          f"{len(registered)} rules covered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
