#!/usr/bin/env python3
"""Changed-files-aware clang-tidy runner.

Compiling the whole tree under `-DACAMAR_CLANG_TIDY=ON` re-tidies
every TU on every run; CI and pre-commit only need the TUs a change
can have affected. This runner reads compile_commands.json (exported
by the normal configure: CMAKE_EXPORT_COMPILE_COMMANDS is always on)
and tidies:

  * every changed .cc that the build compiles, and
  * for every changed .hh, each TU whose text includes it (headers
    are not TUs; findings in them surface through includers, matching
    the .clang-tidy HeaderFilterRegex).

Usage:
    python3 tools/run_clang_tidy.py [--build-dir build]
        [--base <git-ref>] [--all] [--jobs N]

With --base, changed files come from `git diff <base>` (committed and
working-tree changes against that ref); the default base is HEAD.
--all ignores git and tidies every TU in the compile database.

Exit status: 0 clean, 1 clang-tidy reported findings, 2 usage /
environment error (no clang-tidy, no compile database, bad ref).
"""

import argparse
import concurrent.futures
import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def changed_files(base):
    proc = subprocess.run(
        ["git", "diff", "--name-only", "--diff-filter=d", base],
        cwd=ROOT, capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"run_clang_tidy: git diff against '{base}' failed:\n"
              f"{proc.stderr.strip()}", file=sys.stderr)
        return None
    return [ln.strip() for ln in proc.stdout.splitlines() if ln.strip()]


def load_compile_db(build_dir):
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        print(f"run_clang_tidy: {db_path} not found — configure "
              "first (cmake -B build -S .)", file=sys.stderr)
        return None
    entries = json.loads(db_path.read_text())
    db = {}
    for e in entries:
        p = Path(e["file"])
        if not p.is_absolute():
            p = (Path(e["directory"]) / p).resolve()
        db[p] = e
    return db


def tus_including(header_rel, db):
    """TUs whose text mentions the header's include spelling.

    Headers are included by their src/-relative path (the project's
    only include root), so a plain substring scan of each TU and the
    headers it pulls in would be exact; scanning just the TU text
    misses transitive includes, so also follow one level of project
    includes — enough for this tree's shallow header graph.
    """
    # `common/sync.hh` from `src/common/sync.hh`
    spelling = re.sub(r"^src/", "", header_rel)
    pat = re.compile(
        r'#\s*include\s*"' + re.escape(spelling) + '"')
    inc_any = re.compile(r'#\s*include\s*"([^"]+)"')
    text_cache = {}

    def text_of(path):
        if path not in text_cache:
            try:
                text_cache[path] = path.read_text(errors="replace")
            except OSError:
                text_cache[path] = ""
        return text_cache[path]

    hits = []
    for tu in db:
        tu_text = text_of(tu)
        if pat.search(tu_text):
            hits.append(tu)
            continue
        for inc in inc_any.findall(tu_text):
            if pat.search(text_of(ROOT / "src" / inc)):
                hits.append(tu)
                break
    return hits


def run_one(tidy, build_dir, path):
    proc = subprocess.run(
        [tidy, "-p", str(build_dir), "--quiet", str(path)],
        capture_output=True, text=True)
    # clang-tidy exits non-zero for errors; warnings land on stdout.
    noisy = [ln for ln in proc.stdout.splitlines()
             if ln.strip() and "warnings generated" not in ln]
    return path, proc.returncode, noisy, proc.stderr


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", type=Path, default=ROOT / "build")
    ap.add_argument("--base", default="HEAD",
                    help="git ref to diff against (default HEAD)")
    ap.add_argument("--all", action="store_true",
                    help="tidy every TU in the compile database")
    ap.add_argument("--jobs", type=int, default=0,
                    help="parallel clang-tidy processes (0 = auto)")
    args = ap.parse_args(argv)

    tidy = shutil.which("clang-tidy")
    if not tidy:
        print("run_clang_tidy: clang-tidy not in PATH",
              file=sys.stderr)
        return 2

    db = load_compile_db(args.build_dir.resolve())
    if db is None:
        return 2

    if args.all:
        targets = sorted(db)
    else:
        changed = changed_files(args.base)
        if changed is None:
            return 2
        targets = set()
        for rel in changed:
            p = (ROOT / rel).resolve()
            if p in db:
                targets.add(p)
            elif rel.endswith((".hh", ".h")):
                targets.update(tus_including(rel, db))
        targets = sorted(targets)

    if not targets:
        print("run_clang_tidy: no affected TUs")
        return 0
    print(f"run_clang_tidy: {len(targets)} TU(s)")

    failed = False
    jobs = args.jobs or None  # None = executor default
    with concurrent.futures.ThreadPoolExecutor(jobs) as pool:
        for path, rc, noisy, err in pool.map(
                lambda p: run_one(tidy, args.build_dir, p), targets):
            rel = path.relative_to(ROOT)
            if rc != 0 or noisy:
                failed = True
                print(f"--- {rel}")
                for ln in noisy:
                    print(ln)
                if rc != 0 and err.strip():
                    print(err.strip(), file=sys.stderr)
            else:
                print(f"ok  {rel}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
