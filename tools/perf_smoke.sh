#!/usr/bin/env bash
# Run the bench smoke set with profiling on and merge the perf
# records into one set file.
#
#   tools/perf_smoke.sh [build_dir] [out_dir] [dim]
#
# Defaults: build_dir=build, out_dir=<build_dir>/perf, dim=256 (small
# enough for CI, large enough that every zone fires). Produces
# <out_dir>/<bench>.json + .folded per bench and the merged
# <out_dir>/perf_smoke.json that bench_compare.py diffs against
# BENCH_baseline.json. Refresh the checked-in baseline with:
#
#   tools/perf_smoke.sh && cp build/perf/perf_smoke.json BENCH_baseline.json

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-${BUILD_DIR}/perf}"
DIM="${3:-256}"

BENCHES=(
    table1_criteria
    table2_convergence
    fig1_spmv_latency
    fig2_underutilization
    fig5_reconfig_rate
    fig6_speedup
    fig7_ru_improvement
    fig8_gpu_underutil
    fig9_throughput
    fig10_perf_efficiency
    fig11_msid_sweep
    fig12_sampling_rate
    fig13_reconfig_bounds
    ablation_reconfig_overlap
    ablation_formats
    ablation_ru_metrics
    ablation_gpu_kernels
    ablation_msid_tolerance
    spmv_kernels
    spmm_kernels
)

# The compare tooling itself is under test too: run its unit suite
# before trusting it to merge/validate this run's records.
python3 "$(dirname "$0")/test_bench_compare.py" --quiet

mkdir -p "${OUT_DIR}"

for bench in "${BENCHES[@]}"; do
    bin="${BUILD_DIR}/bench/${bench}"
    if [[ ! -x "${bin}" ]]; then
        echo "perf_smoke: missing ${bin} (build the benches first)" >&2
        exit 2
    fi
    echo "perf_smoke: ${bench} (dim=${DIM})" >&2
    "${bin}" --dim="${DIM}" --profile=1 \
        --perf-json="${OUT_DIR}/${bench}.json" \
        --flamegraph="${OUT_DIR}/${bench}.folded" \
        > "${OUT_DIR}/${bench}.out"
done

python3 "$(dirname "$0")/bench_compare.py" merge \
    "${OUT_DIR}"/*.json --out "${OUT_DIR}/perf_smoke.json"
python3 "$(dirname "$0")/bench_compare.py" validate \
    "${OUT_DIR}/perf_smoke.json"
