#!/usr/bin/env python3
"""Summarize (or validate) an acamar-util-v1 utilization report.

Consumes the JSON document written by --util-report=<file>.json and
prints the attribution headlines: per-kernel bytes moved and achieved
GB/s against the calibrated STREAM peak, the host aggregate roofline
position (and its RU), the thread-pool busy/idle split, and the
FPGA-model RU of the same run — host and model utilization side by
side.

    python3 tools/util_report.py util.json

CI runs the schema gate instead of the report:

    python3 tools/util_report.py util.json --validate

The gate additionally rejects reports where a kernel zone carries
zero bytes or flops (an instrumented kernel that recorded nothing
means its analytic work model broke) and pool accounting where
busy + idle exceeds the measured worker wall time.

Exit status 0 = report printed / validation passed, 1 = validation
failed, 2 = usage / IO error.
"""

import argparse
import json
import sys

SCHEMA = "acamar-util-v1"

_CALIBRATION_FIELDS = ("copy_gbps", "scale_gbps", "add_gbps",
                       "triad_gbps", "peak_gbps")
_KERNEL_INT_FIELDS = ("calls", "bytes", "flops", "total_ns")
_POOL_FIELDS = ("busy_ns", "idle_ns", "worker_ns", "tasks", "steals")


def load_report(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _num(obj, key):
    return isinstance(obj.get(key), (int, float))


def validate_report(doc, errors):
    """Append schema violations to `errors`; empty list = valid."""
    if not isinstance(doc, dict):
        errors.append("top level is not a JSON object")
        return
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema is {doc.get('schema')!r}, "
                      f"expected {SCHEMA!r}")
    if not isinstance(doc.get("git_sha"), str):
        errors.append("missing string 'git_sha'")

    calib = doc.get("calibration")
    if calib is not None:
        if not isinstance(calib, dict):
            errors.append("'calibration' is not an object")
        else:
            for key in _CALIBRATION_FIELDS:
                if not _num(calib, key):
                    errors.append(f"calibration: missing numeric "
                                  f"{key!r}")

    kernels = doc.get("kernels")
    if not isinstance(kernels, list):
        errors.append("missing 'kernels' list")
        kernels = []
    for i, k in enumerate(kernels):
        where = f"kernels[{i}]"
        if not isinstance(k, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(k.get("zone"), str):
            errors.append(f"{where}: missing string 'zone'")
            continue
        for key in _KERNEL_INT_FIELDS:
            if not _num(k, key):
                errors.append(f"{where} ({k['zone']}): missing "
                              f"numeric {key!r}")
        if not _num(k, "achieved_gbps"):
            errors.append(f"{where} ({k['zone']}): missing numeric "
                          "'achieved_gbps'")
        # Every ledgered kernel models compulsory traffic; a zone
        # with zero bytes means its analytic model broke.
        if k.get("bytes") == 0:
            errors.append(f"{where} ({k['zone']}): zero bytes — "
                          "work model recorded nothing")
        if k.get("flops") == 0:
            errors.append(f"{where} ({k['zone']}): zero flops — "
                          "work model recorded nothing")

    host = doc.get("host")
    if not isinstance(host, dict):
        errors.append("missing 'host' object")
    else:
        for key in ("bytes", "flops", "kernel_ns", "achieved_gbps"):
            if not _num(host, key):
                errors.append(f"host: missing numeric {key!r}")

    pool = doc.get("pool")
    if not isinstance(pool, dict):
        errors.append("missing 'pool' object")
    else:
        for key in _POOL_FIELDS:
            if not _num(pool, key):
                errors.append(f"pool: missing numeric {key!r}")
        busy = pool.get("busy_ns", 0)
        idle = pool.get("idle_ns", 0)
        worker = pool.get("worker_ns", 0)
        # busy + idle classifies worker-loop iterations, so it can
        # never exceed the workers' measured loop lifetime (worker_ns
        # is 0 for pools outliving the window — then nothing to gate).
        if isinstance(busy, (int, float)) and \
                isinstance(idle, (int, float)) and \
                isinstance(worker, (int, float)) and \
                worker > 0 and busy + idle > worker * 1.01:
            errors.append(f"pool: busy+idle ({busy + idle}) exceeds "
                          f"worker wall time ({worker})")

    batch = doc.get("batch")
    if not isinstance(batch, dict) or not _num(batch, "jobs") or \
            not _num(batch, "job_ns"):
        errors.append("missing 'batch' object with jobs/job_ns")

    blocks = doc.get("block_samples")
    if not isinstance(blocks, dict) or \
            not _num(blocks, "count") or \
            not _num(blocks, "dropped") or \
            not isinstance(blocks.get("samples"), list):
        errors.append("missing 'block_samples' object with "
                      "count/dropped/samples")

    fpga = doc.get("fpga_model")
    if not isinstance(fpga, dict) or not _num(fpga, "runs"):
        errors.append("missing 'fpga_model' object with runs")


def report(doc, out):
    calib = doc.get("calibration") or {}
    peak = calib.get("peak_gbps")
    if peak:
        out.write(f"calibrated peak: {peak:.2f} GB/s "
                  f"(copy {calib.get('copy_gbps', 0):.2f}, "
                  f"triad {calib.get('triad_gbps', 0):.2f})\n")
    else:
        out.write("no calibration in report — achieved GB/s stated "
                  "without a roofline denominator\n")

    kernels = doc.get("kernels") or []
    if kernels:
        out.write("\nkernels:\n")
    for k in sorted(kernels, key=lambda k: k.get("zone", "?")):
        gbps = k.get("achieved_gbps", 0.0)
        line = (f"  {k.get('zone', '?'):<24} "
                f"{k.get('calls', 0):>8} calls "
                f"{k.get('bytes', 0):>14} B  {gbps:8.2f} GB/s")
        if "peak_fraction" in k:
            line += f"  ({100.0 * k['peak_fraction']:.0f}% of peak)"
        out.write(line + "\n")

    host = doc.get("host") or {}
    if host:
        line = (f"\nhost aggregate: {host.get('bytes', 0)} B in "
                f"{host.get('kernel_ns', 0)} kernel-ns, "
                f"{host.get('achieved_gbps', 0.0):.2f} GB/s")
        if "host_ru" in host:
            line += f", RU {host['host_ru']:.3f}"
        out.write(line + "\n")

    pool = doc.get("pool") or {}
    if pool.get("tasks"):
        busy = pool.get("busy_ns", 0)
        idle = pool.get("idle_ns", 0)
        frac = pool.get("busy_fraction")
        detail = f" ({100.0 * frac:.1f}% busy)" if frac is not None \
            else ""
        out.write(f"pool: busy {busy} ns, idle {idle} ns{detail}, "
                  f"{pool.get('tasks', 0)} tasks, "
                  f"{pool.get('steals', 0)} stolen\n")

    batch = doc.get("batch") or {}
    if batch.get("jobs"):
        out.write(f"batch: {batch['jobs']} jobs, "
                  f"{batch.get('job_ns', 0)} job-ns\n")

    blocks = doc.get("block_samples") or {}
    if blocks.get("count"):
        out.write(f"block samples: {blocks['count']} kept, "
                  f"{blocks.get('dropped', 0)} dropped\n")

    fpga = doc.get("fpga_model") or {}
    if fpga.get("runs"):
        out.write(f"fpga model: {fpga['runs']} runs, "
                  f"paper RU {fpga.get('paper_ru', 0.0):.3f}, "
                  f"occupancy RU "
                  f"{fpga.get('occupancy_ru', 0.0):.3f}\n")


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report",
                    help="utilization JSON from --util-report=<path>")
    ap.add_argument("--validate", action="store_true",
                    help="check the report against the "
                         f"{SCHEMA} schema and exit (CI gate)")
    args = ap.parse_args(argv)

    try:
        doc = load_report(args.report)
    except (OSError, json.JSONDecodeError) as e:
        print(f"util_report: {args.report}: {e}", file=sys.stderr)
        return 2

    errors = []
    validate_report(doc, errors)
    if args.validate:
        if errors:
            for err in errors:
                print(f"util_report: {args.report}: {err}",
                      file=sys.stderr)
            return 1
        n_kernels = len(doc.get("kernels", []))
        print(f"{args.report}: valid {SCHEMA} ({n_kernels} kernel "
              f"zone(s))")
        return 0

    if errors:
        print(f"util_report: warning: {len(errors)} schema issue(s) "
              f"in {args.report}; report may be partial",
              file=sys.stderr)

    print(f"{args.report}:")
    report(doc, sys.stdout)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:
        sys.exit(0)
